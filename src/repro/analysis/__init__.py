"""repro.analysis -- static analyses over the IR.

Alias analysis, memory def-use, reaching definitions, input-channel
detection, the call graph, SSA liveness, and the two slicers (branch
decomposition / input-channel construction) at the heart of Pythia.
"""

from .alias import AliasAnalysis, HEAP_ALLOCATORS, MemObject
from .callgraph import CallGraph
from .dataflow import MemoryDef, MemoryDefUse, ReachingDefinitions
from .input_channels import (
    IC_CATEGORIES,
    InputChannelAnalysis,
    InputChannelSite,
    channel_kind_of,
    written_argument_indices,
)
from .liveness import Liveness
from .manager import (
    AnalysisManager,
    DEFAULT_MANAGER,
    get_manager,
    invalidate_analyses,
)
from .slicing import BackwardSlicer, BranchSlice, ForwardSlice, ForwardSlicer

__all__ = [
    "AliasAnalysis",
    "AnalysisManager",
    "BackwardSlicer",
    "BranchSlice",
    "CallGraph",
    "channel_kind_of",
    "DEFAULT_MANAGER",
    "get_manager",
    "invalidate_analyses",
    "ForwardSlice",
    "ForwardSlicer",
    "HEAP_ALLOCATORS",
    "IC_CATEGORIES",
    "InputChannelAnalysis",
    "InputChannelSite",
    "Liveness",
    "MemObject",
    "MemoryDef",
    "MemoryDefUse",
    "ReachingDefinitions",
    "written_argument_indices",
]
