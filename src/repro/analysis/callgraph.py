"""Direct call graph over a module."""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.function import Function
from ..ir.instructions import Call
from ..ir.module import Module


class CallGraph:
    """Callers/callees of every defined function, plus orderings."""

    def __init__(self, module: Module):
        self.module = module
        self.callees: Dict[Function, Set[Function]] = {}
        self.callers: Dict[Function, Set[Function]] = {}
        self.call_sites: Dict[Function, List[Call]] = {}
        for function in module.defined_functions():
            self.callees.setdefault(function, set())
            self.callers.setdefault(function, set())
            self.call_sites.setdefault(function, [])
        for function in module.defined_functions():
            for inst in function.instructions():
                if isinstance(inst, Call):
                    callee = inst.callee
                    self.callees[function].add(callee)
                    if not callee.is_declaration:
                        self.callers.setdefault(callee, set()).add(function)
                        self.call_sites.setdefault(callee, []).append(inst)

    def callers_of(self, function: Function) -> Set[Function]:
        return self.callers.get(function, set())

    def call_sites_of(self, function: Function) -> List[Call]:
        """Every call instruction that targets ``function``."""
        return self.call_sites.get(function, [])

    def bottom_up_order(self) -> List[Function]:
        """Callees before callers (cycles broken arbitrarily)."""
        order: List[Function] = []
        visited: Set[Function] = set()

        def visit(function: Function) -> None:
            stack = [(function, iter(sorted(self.callees.get(function, ()), key=lambda f: f.name)))]
            visited.add(function)
            while stack:
                current, children = stack[-1]
                advanced = False
                for child in children:
                    if child.is_declaration or child in visited:
                        continue
                    visited.add(child)
                    stack.append(
                        (child, iter(sorted(self.callees.get(child, ()), key=lambda f: f.name)))
                    )
                    advanced = True
                    break
                if not advanced:
                    order.append(current)
                    stack.pop()

        for function in self.module.defined_functions():
            if function not in visited:
                visit(function)
        return order

    def is_recursive(self, function: Function) -> bool:
        """True when ``function`` can (transitively) call itself."""
        seen: Set[Function] = set()
        stack = [c for c in self.callees.get(function, ()) if not c.is_declaration]
        while stack:
            current = stack.pop()
            if current is function:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(
                c for c in self.callees.get(current, ()) if not c.is_declaration
            )
        return False
