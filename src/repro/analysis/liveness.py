"""SSA liveness analysis.

Used by the metrics layer to estimate register pressure: values live
across many points spill under register allocation, and the paper's
machine pass adds extra PA instructions at spill points.
"""

from __future__ import annotations

from typing import Dict, Set

from ..ir.function import BasicBlock, Function
from ..ir.instructions import Instruction, Phi
from ..ir.values import Argument, Value


class Liveness:
    """Block-level live-in/live-out sets of SSA values."""

    def __init__(self, function: Function):
        self.function = function
        self.live_in: Dict[BasicBlock, Set[Value]] = {}
        self.live_out: Dict[BasicBlock, Set[Value]] = {}
        self._solve()

    @staticmethod
    def _is_tracked(value: Value) -> bool:
        return isinstance(value, (Instruction, Argument))

    def _uses_defs(self, block: BasicBlock) -> "tuple[Set[Value], Set[Value]]":
        uses: Set[Value] = set()
        defs: Set[Value] = set()
        for inst in block.instructions:
            if isinstance(inst, Phi):
                # Phi uses are live-out of the predecessors, handled below.
                defs.add(inst)
                continue
            for operand in inst.operands:
                if self._is_tracked(operand) and operand not in defs:
                    uses.add(operand)
            if not inst.type.is_void:
                defs.add(inst)
        return uses, defs

    def _solve(self) -> None:
        blocks = list(self.function.blocks)
        use_def = {block: self._uses_defs(block) for block in blocks}
        for block in blocks:
            self.live_in[block] = set()
            self.live_out[block] = set()
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                out: Set[Value] = set()
                for succ in block.successors:
                    out |= self.live_in.get(succ, set())
                    for phi in succ.phis:
                        try:
                            incoming = phi.incoming_for_block(block)
                        except KeyError:
                            continue
                        if self._is_tracked(incoming):
                            out.add(incoming)
                uses, defs = use_def[block]
                new_in = uses | (out - defs)
                if out != self.live_out[block] or new_in != self.live_in[block]:
                    self.live_out[block] = out
                    self.live_in[block] = new_in
                    changed = True

    def max_pressure(self) -> int:
        """Peak number of simultaneously live values at block boundaries."""
        if not self.live_in:
            return 0
        return max(
            max((len(s) for s in self.live_in.values()), default=0),
            max((len(s) for s in self.live_out.values()), default=0),
        )

    def estimated_spills(self, registers: int = 28) -> int:
        """Values exceeding the register file at the pressure peak.

        AArch64 exposes ~28 allocatable GPRs; anything above spills.
        """
        return max(0, self.max_pressure() - registers)
