"""Input-channel detection and classification (Definition 2.1).

An *input channel* (IC) is a function through which external data
enters program memory.  The paper classifies six categories -- print,
scan, move/copy, get, put, map -- and reports their distribution
(Fig. 5(b)).

Detection covers:

- library declarations carried in the libc registry
  (:data:`repro.hardware.libc.LIBRARY`), whose IR declarations are
  tagged with ``input_channel_kind``;
- *user-implemented variants* (the paper's nginx ``ngx_*`` copies):
  defined functions explicitly tagged with ``input_channel_kind``;
- *dispatcher functions*: defined functions that forward one of their
  own pointer parameters into the written argument of another IC --
  these are the paper's "dispatcher gadgets" and are treated as ICs of
  the same category at their call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.libc import LIBRARY
from ..ir.function import Function
from ..ir.instructions import Call, Instruction
from ..ir.module import Module
from ..ir.types import PointerType
from ..ir.values import Argument, Value

#: The six IC categories of Definition 2.1.
IC_CATEGORIES = ("print", "scan", "movecopy", "get", "put", "map")


@dataclass
class InputChannelSite:
    """One call site of an input channel."""

    call: Call
    function: Function  # the function containing the call
    kind: str
    #: operand values the channel writes through (overflow destinations)
    written_pointers: Tuple[Value, ...]
    #: True when the channel's *return value* carries external data
    writes_return: bool = False


def channel_kind_of(function: Function) -> Optional[str]:
    """The IC category of a callee, or ``None``."""
    if function.input_channel_kind:
        return function.input_channel_kind
    lib = LIBRARY.get(function.name)
    if lib is not None:
        return lib.ic_kind
    return None


def written_argument_indices(callee: Function, num_args: int) -> List[int]:
    """Indices of call arguments the channel writes through."""
    lib = LIBRARY.get(callee.name)
    if lib is not None:
        indices = [i for i in lib.writes_args if i < num_args]
        if lib.writes_varargs:
            indices.extend(range(len(lib.function_type.params), num_args))
        return indices
    # User-tagged ICs: conservatively, every pointer parameter is written.
    return [
        i
        for i, ptype in enumerate(callee.function_type.params[:num_args])
        if isinstance(ptype, PointerType)
    ]


class InputChannelAnalysis:
    """Finds and classifies every IC call site in a module."""

    def __init__(self, module: Module):
        self.module = module
        self.dispatchers: Dict[Function, str] = {}
        self._find_dispatchers()
        self.sites: List[InputChannelSite] = []
        self._collect_sites()

    # -- dispatcher detection ----------------------------------------------------

    def _find_dispatchers(self) -> None:
        """Iterate to a fixpoint: a function that passes one of its own
        pointer parameters into an IC's written argument is itself an IC."""
        changed = True
        while changed:
            changed = False
            for function in self.module.defined_functions():
                if function in self.dispatchers or function.input_channel_kind:
                    continue
                kind = self._dispatch_kind(function)
                if kind is not None:
                    self.dispatchers[function] = kind
                    changed = True

    def _dispatch_kind(self, function: Function) -> Optional[str]:
        params = set(function.args)
        for inst in function.instructions():
            if not isinstance(inst, Call):
                continue
            kind = self._site_kind(inst.callee)
            if kind is None:
                continue
            for index in written_argument_indices(inst.callee, len(inst.args)):
                value = inst.args[index]
                if value in params or self._derives_from_param(value, params):
                    return kind
        return None

    def _site_kind(self, callee: Function) -> Optional[str]:
        kind = channel_kind_of(callee)
        if kind is not None:
            return kind
        return self.dispatchers.get(callee)

    @staticmethod
    def _derives_from_param(value: Value, params: set) -> bool:
        """Follow gep/cast chains (and the codegen's parameter spill
        slots) back to a formal parameter."""
        from ..ir.instructions import Alloca, Cast, GetElementPtr, Load, Store

        seen = set()
        while id(value) not in seen:
            seen.add(id(value))
            if isinstance(value, (GetElementPtr, Cast)):
                value = value.operands[0]
                continue
            if isinstance(value, Load) and isinstance(value.pointer, Alloca):
                # `%p.addr = alloca; store %p, %p.addr; ... load %p.addr`
                slot = value.pointer
                stores = [
                    u
                    for u in slot.users
                    if isinstance(u, Store) and u.pointer is slot
                ]
                if len(stores) == 1 and isinstance(stores[0].value, Argument):
                    value = stores[0].value
                    continue
            break
        return value in params

    # -- site collection ---------------------------------------------------------------

    def _collect_sites(self) -> None:
        for function in self.module.defined_functions():
            for inst in function.instructions():
                if not isinstance(inst, Call):
                    continue
                kind = self._site_kind(inst.callee)
                if kind is None:
                    continue
                indices = written_argument_indices(inst.callee, len(inst.args))
                written = tuple(
                    inst.args[i]
                    for i in indices
                    if isinstance(inst.args[i].type, PointerType)
                )
                lib = LIBRARY.get(inst.callee.name)
                self.sites.append(
                    InputChannelSite(
                        call=inst,
                        function=function,
                        kind=kind,
                        written_pointers=written,
                        writes_return=bool(lib and lib.writes_return),
                    )
                )

    # -- reporting ---------------------------------------------------------------

    def distribution(self) -> Dict[str, int]:
        """IC count per category (the Fig. 5(b) census)."""
        counts = {category: 0 for category in IC_CATEGORIES}
        for site in self.sites:
            counts[site.kind] = counts.get(site.kind, 0) + 1
        return counts

    def total(self) -> int:
        return len(self.sites)

    def sites_in(self, function: Function) -> List[InputChannelSite]:
        return [s for s in self.sites if s.function is function]
