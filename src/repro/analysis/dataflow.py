"""Def-use chains over memory, and reaching definitions.

SSA values carry their def-use chains structurally (every
:class:`~repro.ir.values.Value` tracks its uses), so this module is
about the part SSA does not give us: *memory*.  A load's definitions
are the stores -- and input-channel writes -- that may write the same
abstract object, as determined by the alias analysis.

Two granularities are provided:

- :class:`MemoryDefUse` -- module-wide, flow-insensitive may-def
  indexing used by the slicers;
- :class:`ReachingDefinitions` -- intraprocedural, block-level,
  flow-sensitive reaching definitions used by the DFI baseline to build
  its allowed-writer sets (smaller sets = the checks DFI actually
  performs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..ir.cfg import predecessor_map, reverse_postorder
from ..ir.function import BasicBlock, Function
from ..ir.instructions import Call, Instruction, Load, Store
from ..ir.module import Module
from .alias import AliasAnalysis, MemObject
from .input_channels import InputChannelAnalysis, InputChannelSite


@dataclass(eq=False)
class MemoryDef:
    """One definition of memory: a store or an input-channel write."""

    def_id: int
    inst: Instruction  # Store or Call
    function: Function
    objects: FrozenSet[MemObject]
    ic_site: Optional[InputChannelSite] = None

    @property
    def is_input_channel(self) -> bool:
        return self.ic_site is not None


class MemoryDefUse:
    """Module-wide index: object -> defs / loads that may touch it."""

    def __init__(
        self,
        module: Module,
        alias: AliasAnalysis,
        channels: Optional[InputChannelAnalysis] = None,
    ):
        self.module = module
        self.alias = alias
        self.channels = channels or InputChannelAnalysis(module)
        self.defs: List[MemoryDef] = []
        self.defs_by_object: Dict[MemObject, List[MemoryDef]] = {}
        self.loads_by_object: Dict[MemObject, List[Load]] = {}
        self.def_for_inst: Dict[int, MemoryDef] = {}
        self._index()

    def _new_def(
        self,
        inst: Instruction,
        function: Function,
        objects: FrozenSet[MemObject],
        ic_site: Optional[InputChannelSite] = None,
    ) -> MemoryDef:
        mdef = MemoryDef(len(self.defs) + 1, inst, function, objects, ic_site)
        self.defs.append(mdef)
        self.def_for_inst[id(inst)] = mdef
        for obj in objects:
            self.defs_by_object.setdefault(obj, []).append(mdef)
        return mdef

    def _index(self) -> None:
        ic_by_call = {id(site.call): site for site in self.channels.sites}
        for function in self.module.defined_functions():
            for inst in function.instructions():
                if isinstance(inst, Store):
                    objects = self.alias.points_to(inst.pointer)
                    self._new_def(inst, function, objects)
                elif isinstance(inst, Call):
                    site = ic_by_call.get(id(inst))
                    if site is None:
                        continue
                    objects: Set[MemObject] = set()
                    for ptr in site.written_pointers:
                        objects |= self.alias.points_to(ptr)
                    if site.writes_return:
                        objects |= self.alias.points_to(inst)
                    if objects:
                        self._new_def(inst, function, frozenset(objects), site)
                elif isinstance(inst, Load):
                    for obj in self.alias.points_to(inst.pointer):
                        self.loads_by_object.setdefault(obj, []).append(inst)

    # -- queries -----------------------------------------------------------------

    def defs_of_object(self, obj: MemObject) -> List[MemoryDef]:
        return self.defs_by_object.get(obj, [])

    def may_defs_for_load(self, load: Load) -> List[MemoryDef]:
        """Every definition that may have written what ``load`` reads."""
        result: List[MemoryDef] = []
        seen: Set[int] = set()
        for obj in self.alias.points_to(load.pointer):
            for mdef in self.defs_of_object(obj):
                if mdef.def_id not in seen:
                    seen.add(mdef.def_id)
                    result.append(mdef)
        return result

    def ic_defs_of_object(self, obj: MemObject) -> List[MemoryDef]:
        return [d for d in self.defs_of_object(obj) if d.is_input_channel]

    def def_of(self, inst: Instruction) -> Optional[MemoryDef]:
        return self.def_for_inst.get(id(inst))


class ReachingDefinitions:
    """Classic block-level reaching definitions for one function.

    A definition is *killed* only by a later definition that
    must-aliases the same single object (strong update); definitions
    through ambiguous pointers are weak updates.
    """

    def __init__(self, function: Function, memdu: MemoryDefUse):
        self.function = function
        self.memdu = memdu
        self.alias = memdu.alias
        self._local_defs = [d for d in memdu.defs if d.function is function]
        self.block_in: Dict[BasicBlock, Set[int]] = {}
        self.block_out: Dict[BasicBlock, Set[int]] = {}
        self._solve()

    def _def_pointer(self, mdef: MemoryDef) -> Optional[object]:
        if isinstance(mdef.inst, Store):
            return mdef.inst.pointer
        return None

    def _strong_object(self, mdef: MemoryDef):
        """The single object ``mdef`` fully overwrites, or ``None``.

        A store is a *strong* update (killing prior definitions) only
        when it must-alias one concrete object **and** covers the whole
        object -- an element store into an array must not kill its
        sibling elements' definitions.
        """
        if not isinstance(mdef.inst, Store):
            return None
        obj = self.alias.must_alias_single(mdef.inst.pointer)
        if obj is None:
            return None
        from ..ir.instructions import Alloca
        from ..ir.values import GlobalVariable

        anchor = obj.anchor
        if isinstance(anchor, Alloca):
            full = anchor.allocated_type.size
        elif isinstance(anchor, GlobalVariable):
            full = anchor.value_type.size
        else:
            return None
        if mdef.inst.value.type.size >= full:
            return obj
        return None

    def _gen_kill(self, block: BasicBlock) -> Tuple[Set[int], Set[int]]:
        gen: Set[int] = set()
        kill: Set[int] = set()
        for inst in block.instructions:
            mdef = self.memdu.def_of(inst)
            if mdef is None or mdef.function is not self.function:
                continue
            obj = self._strong_object(mdef)
            if obj is not None:
                for other in self.memdu.defs_of_object(obj):
                    if other.def_id != mdef.def_id:
                        kill.add(other.def_id)
                        gen.discard(other.def_id)
            gen.add(mdef.def_id)
        return gen, kill

    def _solve(self) -> None:
        blocks = reverse_postorder(self.function)
        gen_kill = {block: self._gen_kill(block) for block in blocks}
        # One predecessor map for the whole fixpoint: the per-block
        # property rescans the function on every call.
        preds = predecessor_map(self.function)
        for block in blocks:
            self.block_in[block] = set()
            self.block_out[block] = set(gen_kill[block][0])
        changed = True
        while changed:
            changed = False
            for block in blocks:
                new_in: Set[int] = set()
                for pred in preds[block]:
                    new_in |= self.block_out.get(pred, set())
                gen, kill = gen_kill[block]
                new_out = gen | (new_in - kill)
                if new_in != self.block_in[block] or new_out != self.block_out[block]:
                    self.block_in[block] = new_in
                    self.block_out[block] = new_out
                    changed = True

    def reaching(self, load: Load) -> Set[MemoryDef]:
        """Definitions of ``load``'s objects that reach the load point."""
        return self.reaching_at(load, self.memdu.alias.points_to(load.pointer))

    def reaching_at(
        self, point: Instruction, target_objects
    ) -> Set[MemoryDef]:
        """Definitions of ``target_objects`` live just before ``point``."""
        block = point.parent
        assert block is not None
        live = set(self.block_in.get(block, set()))
        for inst in block.instructions:
            if inst is point:
                break
            mdef = self.memdu.def_of(inst)
            if mdef is None:
                continue
            obj = self._strong_object(mdef)
            if obj is not None:
                for other in self.memdu.defs_of_object(obj):
                    live.discard(other.def_id)
            live.add(mdef.def_id)
        by_id = {d.def_id: d for d in self.memdu.defs}
        return {
            by_id[def_id]
            for def_id in live
            if def_id in by_id and (by_id[def_id].objects & set(target_objects))
        }
