"""Per-module analysis memoization, in the style of LLVM's AnalysisManager.

``protect_all`` and the defense passes used to construct a fresh
``AliasAnalysis``/``InputChannelAnalysis``/``MemoryDefUse``/``CallGraph``
for every consumer, re-solving the same constraint systems on the same
unmodified module.  :class:`AnalysisManager` memoizes them per module so
every consumer in one pipeline stage shares one instance of each.

Freshness discipline (mirrors the pre-decoded program cache in
:mod:`repro.hardware.decoder`):

- transforms call :func:`invalidate_analyses` after mutating a module
  (``PassManager.run`` and the mem2reg hook in ``protect()`` do this
  alongside their existing decode-cache invalidation);
- as a second line of defense, every entry stores a cheap structural
  fingerprint of the module and is discarded when the live module no
  longer matches it, so an unreported mutation that changes instruction
  counts cannot serve stale analyses.

Entries live *on the module object* (``module._analysis_entry``), not in
a manager-owned mapping: cached analyses hold strong references back to
their module, so any manager-side container -- even a
``WeakKeyDictionary``, whose values would pin the keys -- would keep
every analysed module alive for the life of the process.  With on-module
storage the entry is just part of the module's own (cyclic, collectable)
object graph and dies with it.  The manager itself carries only the
hit/miss counters and a ``WeakSet`` registry for whole-process
invalidation; each entry is tagged with its owning manager so separate
manager instances do not serve each other's results.
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional, Tuple

from ..ir.module import Module
from .alias import AliasAnalysis
from .callgraph import CallGraph
from .dataflow import MemoryDefUse
from .input_channels import InputChannelAnalysis
from .slicing import BackwardSlicer, ForwardSlicer


def _module_fingerprint(module: Module) -> Tuple:
    """Cheap structural identity: function shapes and global count.

    Instrumentation always inserts instructions, so any pass that
    forgets to invalidate still misses the cache.  (A mutation that
    preserves every count -- e.g. swapping a callee in place -- is not
    caught; explicit invalidation is the primary mechanism.)
    """
    return (
        len(module.globals),
        tuple(
            (function.name, len(function.blocks), sum(len(b.instructions) for b in function.blocks))
            for function in module.functions.values()
        ),
    )


#: Attribute under which a module carries its cached analyses.
_ENTRY_ATTR = "_analysis_entry"


class _ModuleEntry:
    """The cached analyses of one module, fingerprint-guarded."""

    __slots__ = ("owner", "fingerprint", "analyses")

    def __init__(self, owner: "AnalysisManager", fingerprint: Tuple):
        self.owner = owner
        self.fingerprint = fingerprint
        self.analyses: Dict[str, object] = {}


class AnalysisManager:
    """Memoizes module-level analyses keyed per module."""

    def __init__(self):
        #: modules carrying an entry owned by this manager (weak: the
        #: registry must not keep result modules alive)
        self._modules: "weakref.WeakSet[Module]" = weakref.WeakSet()
        self.hits = 0
        self.misses = 0

    # -- entry bookkeeping ----------------------------------------------------

    def _entry(self, module: Module) -> _ModuleEntry:
        fingerprint = _module_fingerprint(module)
        entry = getattr(module, _ENTRY_ATTR, None)
        if (
            entry is None
            or entry.owner is not self
            or entry.fingerprint != fingerprint
        ):
            entry = _ModuleEntry(self, fingerprint)
            setattr(module, _ENTRY_ATTR, entry)
            self._modules.add(module)
        return entry

    def _get(self, module: Module, name: str, build) -> object:
        entry = self._entry(module)
        analysis = entry.analyses.get(name)
        if analysis is not None:
            self.hits += 1
            return analysis
        self.misses += 1
        analysis = build()
        entry.analyses[name] = analysis
        return analysis

    def invalidate(self, module: Optional[Module] = None) -> None:
        """Drop cached analyses for ``module`` (or all modules)."""
        if module is None:
            for registered in list(self._modules):
                registered.__dict__.pop(_ENTRY_ATTR, None)
            self._modules = weakref.WeakSet()
        else:
            entry = getattr(module, _ENTRY_ATTR, None)
            if entry is not None and entry.owner is self:
                module.__dict__.pop(_ENTRY_ATTR, None)
            self._modules.discard(module)

    def seed(self, module: Module, **analyses: object) -> None:
        """Install externally constructed analyses for ``module``.

        ``remap_report`` uses this so a report remapped into a clone
        serves subsequent manager queries against that clone without a
        recompute.  Keyword names match the accessor names below.
        """
        entry = self._entry(module)
        for name, analysis in analyses.items():
            entry.analyses[name] = analysis

    # -- accessors ------------------------------------------------------------

    def alias(self, module: Module) -> AliasAnalysis:
        return self._get(module, "alias", lambda: AliasAnalysis(module))

    def channels(self, module: Module) -> InputChannelAnalysis:
        return self._get(module, "channels", lambda: InputChannelAnalysis(module))

    def memdu(self, module: Module) -> MemoryDefUse:
        return self._get(
            module,
            "memdu",
            lambda: MemoryDefUse(module, self.alias(module), self.channels(module)),
        )

    def callgraph(self, module: Module) -> CallGraph:
        return self._get(module, "callgraph", lambda: CallGraph(module))

    def slicer(self, module: Module) -> BackwardSlicer:
        return self._get(
            module,
            "slicer",
            lambda: BackwardSlicer(
                module,
                self.alias(module),
                self.channels(module),
                self.memdu(module),
                self.callgraph(module),
            ),
        )

    def dfi_slicer(self, module: Module) -> BackwardSlicer:
        return self._get(
            module,
            "dfi_slicer",
            lambda: BackwardSlicer(
                module,
                self.alias(module),
                self.channels(module),
                self.memdu(module),
                self.callgraph(module),
                stop_at_pointer_arithmetic=True,
            ),
        )

    def forward_slicer(self, module: Module) -> ForwardSlicer:
        return self._get(
            module,
            "forward_slicer",
            lambda: ForwardSlicer(
                module, self.alias(module), self.channels(module), self.memdu(module)
            ),
        )

    def vulnerability_report(self, module: Module):
        """The full §4.1 :class:`~repro.core.vulnerability.VulnerabilityReport`."""

        def build():
            # Imported lazily: repro.core imports repro.analysis.
            from ..core.vulnerability import VulnerabilityAnalysis

            return VulnerabilityAnalysis(module, manager=self).analyze()

        return self._get(module, "vulnerability_report", build)


#: The process-wide manager every pipeline stage shares by default.
DEFAULT_MANAGER = AnalysisManager()


def get_manager() -> AnalysisManager:
    return DEFAULT_MANAGER


def invalidate_analyses(module: Optional[Module] = None) -> None:
    """Drop the default manager's cached analyses for ``module`` (or all)."""
    DEFAULT_MANAGER.invalidate(module)
