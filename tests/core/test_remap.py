"""Report remapping across clones: the shared-analysis correctness oracle."""

from __future__ import annotations

import pytest

from repro.analysis.manager import AnalysisManager
from repro.core.config import SCHEMES
from repro.core.framework import clone_module, protect_all
from repro.core.remap import remap_report
from repro.core.vulnerability import VulnerabilityAnalysis
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.transforms import Mem2Reg
from repro.workloads import generate_program, get_profile

PROFILES = ("505.mcf_r", "519.lbm_r")


def prepared_module(name):
    module = generate_program(get_profile(name)).compile()
    verify_module(module)
    Mem2Reg().run(module)
    return module


def labels(objects):
    return sorted((obj.kind, obj.label) for obj in objects)


@pytest.mark.parametrize("name", PROFILES)
def test_remapped_report_matches_fresh_analysis(name):
    prepared = prepared_module(name)
    report = VulnerabilityAnalysis(prepared).analyze()
    target, vmap = prepared.clone(value_map=True)

    remapped = remap_report(report, vmap, manager=AnalysisManager())
    fresh = VulnerabilityAnalysis(target).analyze()

    assert remapped.module is target
    assert remapped.analysis.module is target
    for field in (
        "all_variables",
        "backward_variables",
        "tainted_variables",
        "cpa_variables",
        "ic_destinations",
        "refined_variables",
    ):
        assert labels(getattr(remapped, field)) == labels(getattr(fresh, field)), field
    assert labels(remapped.stack_vulnerable) == labels(fresh.stack_vulnerable)
    assert labels(remapped.heap_vulnerable) == labels(fresh.heap_vulnerable)
    assert remapped.branch_categories() == fresh.branch_categories()
    assert remapped.refinement_factor() == pytest.approx(fresh.refinement_factor())
    assert len(remapped.branch_slices) == len(fresh.branch_slices)
    assert len(remapped.dfi_slices) == len(fresh.dfi_slices)


@pytest.mark.parametrize("name", PROFILES)
def test_remapped_report_lives_in_clone_coordinates(name):
    prepared = prepared_module(name)
    report = VulnerabilityAnalysis(prepared).analyze()
    target, vmap = prepared.clone(value_map=True)
    remapped = remap_report(report, vmap, manager=AnalysisManager())

    source_ids = {id(obj) for obj in report.all_variables}
    for obj in remapped.all_variables:
        assert id(obj) not in source_ids
        assert vmap.get(obj.anchor) is None  # anchor already IS a clone value
    # ...and the source report is untouched by the translation.
    assert labels(report.all_variables) == labels(remapped.all_variables)


def test_remap_seeds_manager_for_clone_queries():
    prepared = prepared_module(PROFILES[0])
    report = VulnerabilityAnalysis(prepared).analyze()
    target, vmap = prepared.clone(value_map=True)
    manager = AnalysisManager()
    remapped = remap_report(report, vmap, manager=manager)
    assert manager.vulnerability_report(target) is remapped
    assert manager.alias(target) is remapped.analysis.alias


@pytest.mark.parametrize("name", PROFILES)
def test_shared_path_bit_identical_to_recompute_oracle(name):
    module = generate_program(get_profile(name)).compile()
    shared = protect_all(clone_module(module), shared_analysis=True)
    oracle = protect_all(clone_module(module), shared_analysis=False)
    for scheme in SCHEMES:
        assert print_module(shared[scheme].module) == print_module(
            oracle[scheme].module
        ), (name, scheme)
        assert shared[scheme].pass_stats == oracle[scheme].pass_stats, (name, scheme)


def test_remap_rejects_foreign_value_map():
    prepared = prepared_module(PROFILES[0])
    other = prepared_module(PROFILES[1])
    report = VulnerabilityAnalysis(prepared).analyze()
    _, foreign_vmap = other.clone(value_map=True)
    with pytest.raises(ValueError, match="value map"):
        remap_report(report, foreign_vmap, manager=AnalysisManager())


def test_remap_requires_carried_analysis():
    prepared = prepared_module(PROFILES[0])
    report = VulnerabilityAnalysis(prepared).analyze()
    report.analysis = None
    _, vmap = prepared.clone(value_map=True)
    with pytest.raises(ValueError, match="analysis"):
        remap_report(report, vmap, manager=AnalysisManager())
