"""Tests for the end-to-end protection framework."""

import pytest

from repro.core import (
    DefenseConfig,
    SCHEMES,
    clone_module,
    protect,
    protect_all,
)
from repro.frontend import compile_source
from repro.hardware import CPU
from repro.ir import print_module, verify_module
from tests.conftest import LISTING1_SOURCE


class TestCloneModule:
    def test_clone_is_structurally_identical(self, listing1_module):
        clone = clone_module(listing1_module)
        assert print_module(clone) == print_module(listing1_module)

    def test_clone_is_independent(self, listing1_module):
        clone = clone_module(listing1_module)
        protect(clone, scheme="cpa", clone=False)
        # original untouched
        from repro.ir import is_pa_instruction

        assert not any(
            is_pa_instruction(i)
            for f in listing1_module.defined_functions()
            for i in f.instructions()
        )


class TestProtect:
    def test_default_does_not_mutate_input(self, listing1_module):
        before = print_module(listing1_module)
        protect(listing1_module, scheme="pythia")
        assert print_module(listing1_module) == before

    def test_vanilla_only_runs_mem2reg(self, listing1_module):
        result = protect(listing1_module, scheme="vanilla")
        assert result.pa_static == 0
        assert result.report is None
        assert result.scheme == "vanilla"

    def test_all_schemes_verify(self, listing1_module):
        for scheme, result in protect_all(listing1_module).items():
            verify_module(result.module)

    def test_config_and_scheme_are_exclusive(self, listing1_module):
        with pytest.raises(ValueError):
            protect(listing1_module, config=DefenseConfig(scheme="cpa"), scheme="dfi")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            DefenseConfig(scheme="magic")

    def test_ablation_stack_only(self):
        source = """
        int main() {
            char *h;
            char s[8];
            h = malloc(8);
            gets(s);
            fgets(h, 8, NULL);
            if (s[0] == 'a') { return 1; }
            return 0;
        }
        """
        module = compile_source(source)
        stack_only = protect(module, config=DefenseConfig(scheme="pythia", protect_heap=False))
        assert "pythia-stack" in stack_only.pass_stats
        assert "pythia-heap" not in stack_only.pass_stats
        heap_only = protect(module, config=DefenseConfig(scheme="pythia", protect_stack=False))
        assert "pythia-heap" in heap_only.pass_stats
        assert "pythia-stack" not in heap_only.pass_stats

    def test_mem2reg_can_be_disabled(self, listing1_module):
        result = protect(
            listing1_module, config=DefenseConfig(scheme="vanilla", run_mem2reg=False)
        )
        # the parameter spill slots survive
        access = result.module.get_function("access_check")
        assert any(a.name.endswith(".addr") for a in access.allocas())


class TestProtectionResult:
    def test_binary_bytes_proportional_to_instructions(self, listing1_module):
        result = protect(listing1_module, scheme="cpa")
        assert result.binary_bytes == result.instruction_count * 4

    def test_pa_static_counts_only_pa(self, listing1_module):
        vanilla = protect(listing1_module, scheme="vanilla")
        pythia = protect(listing1_module, scheme="pythia")
        assert vanilla.pa_static == 0
        assert pythia.pa_static > 0

    def test_canary_count(self, listing1_module):
        pythia = protect(listing1_module, scheme="pythia")
        assert pythia.canary_count == pythia.pass_stats["pythia-stack"]["canaries"]

    def test_instrumented_modules_still_run(self, listing1_module):
        for scheme, result in protect_all(listing1_module).items():
            outcome = CPU(result.module).run(inputs=[b"hello"])
            assert outcome.ok, (scheme, outcome.trap)
