"""Tests for security reporting (branch verdicts, distances)."""

import pytest

from repro.core import analyze_module, build_security_report, clone_module
from repro.frontend import compile_source
from repro.transforms import Mem2Reg


def security(source):
    module = compile_source(source)
    Mem2Reg().run(module)
    return build_security_report(analyze_module(module))


MIXED = """
int main() {
    int a[4];
    struct_free_zone();
    return 0;
}
void struct_free_zone() { }
"""


class TestVerdicts:
    def test_clean_program_fully_secured(self):
        report = security(
            "int main() { int a[2]; a[0] = 1; if (a[0] > 0) { return 1; } return 0; }"
        )
        assert report.pythia_secured_fraction == 1.0
        assert report.dfi_secured_fraction == 1.0

    def test_field_access_breaks_dfi_only(self):
        source = """
        struct s { int a; int b; };
        int main() {
            struct s v;
            int x = 0;
            scanf("%d", &x);
            v.a = x;
            if (v.a > 0) { return 1; }
            return 0;
        }
        """
        report = security(source)
        assert report.pythia_secured_fraction == 1.0
        assert report.dfi_secured_fraction < 1.0
        assert report.pythia_extra_branches >= 1

    def test_opaque_memory_breaks_pythia(self):
        source = """
        int check(int **pp, int on) {
            int *q;
            if (on > 0) {
                q = *pp;
                if (*q > 3) { return 1; }
            }
            return 0;
        }
        int main() {
            char *r;
            r = mmap(16);
            return check(r, 0);
        }
        """
        report = security(source)
        assert report.pythia_secured_fraction < 1.0

    def test_pythia_never_below_dfi(self):
        from repro.workloads import ALL_PROFILES, generate_program

        program = generate_program(ALL_PROFILES["520.omnetpp_r"])
        module = program.compile()
        Mem2Reg().run(module)
        report = build_security_report(analyze_module(module))
        assert report.pythia_secured_fraction >= report.dfi_secured_fraction


class TestDistances:
    TAINTED = """
    int main() {
        int x = 0;
        scanf("%d", &x);
        int y = x + 1;
        int z = y * 2;
        if (z > 10) { return 1; }
        return 0;
    }
    """

    def test_ic_distance_positive_for_affected(self):
        report = security(self.TAINTED)
        assert report.mean_ic_distance > 0

    def test_pythia_distance_at_least_dfi(self):
        report = security(self.TAINTED)
        assert report.mean_pythia_distance >= report.mean_dfi_distance

    def test_unaffected_module_has_zero_distances(self):
        report = security("int main() { if (1 > 0) { return 1; } return 0; }")
        assert report.mean_ic_distance == 0.0

    def test_empty_module_edge_case(self):
        report = security("int main() { return 0; }")
        assert report.total_branches == 0
        assert report.pythia_secured_fraction == 1.0
