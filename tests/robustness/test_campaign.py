"""The attack-campaign fuzzer and its defense-coverage matrix."""

import json

import pytest

from repro.core import SCHEMES
from repro.robustness.campaign import (
    FAMILY_FAULTS,
    NEW_FAMILIES,
    OUTCOMES,
    Mutant,
    make_mutant,
    mutate_payload,
    run_campaign,
)


class TestMutant:
    def test_same_coordinates_same_mutant(self):
        assert make_mutant(2024, "pac_reuse", 3) == make_mutant(
            2024, "pac_reuse", 3
        )

    def test_different_seed_changes_the_space(self):
        mutants_a = [make_mutant(1, "heap_cross", i) for i in range(1, 12)]
        mutants_b = [make_mutant(2, "heap_cross", i) for i in range(1, 12)]
        assert mutants_a != mutants_b

    def test_index_zero_is_the_unmutated_exploit(self):
        for family in NEW_FAMILIES:
            mutant = make_mutant(2024, family, 0)
            assert mutant.payload_op == "keep"

    def test_to_dict_is_json_ready(self):
        mutant = make_mutant(2024, "call_bend", 5)
        data = json.loads(json.dumps(mutant.to_dict()))
        assert data["family"] == "call_bend"
        assert data["index"] == 5


class TestMutatePayload:
    def _mutant(self, op, amount=4, planted=0):
        return Mutant(
            family="x",
            index=1,
            payload_op=op,
            amount=amount,
            planted=planted,
            occurrence=1,
            trigger=1,
        )

    def test_keep(self):
        assert mutate_payload(b"abc", self._mutant("keep")) == b"abc"

    def test_grow(self):
        assert mutate_payload(b"abc", self._mutant("grow", 4)) == b"abcAAAA"

    def test_shrink_never_empties(self):
        assert mutate_payload(b"ab", self._mutant("shrink", 8)) == b"a"

    def test_flip_is_a_single_bit(self):
        out = mutate_payload(b"\x00\x00", self._mutant("flip", 9))
        assert out == b"\x00\x02"

    def test_value_plants_a_little_endian_word(self):
        mutant = self._mutant("value", planted=0x41)
        out = mutate_payload(b"x" * 12, mutant)
        assert len(out) == 12
        assert out[4:] == (0x41).to_bytes(8, "little")

    def test_spray(self):
        assert mutate_payload(b"xy", self._mutant("spray", 6)) == b"A" * 6


@pytest.fixture(scope="module")
def report():
    return run_campaign(seed=7, budget=6, families=NEW_FAMILIES)


class TestCampaign:
    def test_deterministic_manifest(self, report):
        again = run_campaign(seed=7, budget=6, families=NEW_FAMILIES)
        dump = lambda r: json.dumps(r.to_manifest(), sort_keys=True)  # noqa: E731
        assert dump(report) == dump(again)
        assert json.dumps(report.matrix_manifest(), sort_keys=True) == (
            json.dumps(again.matrix_manifest(), sort_keys=True)
        )

    def test_every_family_runs_under_every_scheme(self, report):
        seen = {
            (run.mutant.family, run.scheme): run.outcome
            for run in report.runs
        }
        for family in NEW_FAMILIES:
            for scheme in SCHEMES:
                assert (family, scheme) in seen

    def test_matrix_has_every_cell(self, report):
        matrix = report.matrix()
        for scheme in SCHEMES:
            for family in NEW_FAMILIES:
                assert set(matrix[scheme][family]) == set(OUTCOMES)

    def test_contract_holds(self, report):
        assert report.contract_violations() == []
        assert report.crashes == []
        assert report.ok

    def test_vanilla_bypasses_exist_and_are_stopped(self, report):
        # The vulnerabilities are real: vanilla lets the baseline
        # exploit of every family through...
        vanilla_bypassed = {
            run.mutant.family
            for run in report.runs
            if run.scheme == "vanilla" and run.outcome == "bypassed"
        }
        assert vanilla_bypassed == set(NEW_FAMILIES)
        # ...and pythia/dfi stop every one of those mutants.
        for run in report.runs:
            if run.scheme in ("pythia", "dfi"):
                assert run.outcome in ("trapped", "detected", "missed")

    def test_bypasses_are_bucketed_and_reduced(self, report):
        buckets = report.bypass_buckets()
        assert buckets, "expected at least the vanilla bypass buckets"
        for bucket, records in buckets.items():
            exemplars = [r for r in records if r.reduced_source]
            assert len(exemplars) == 1, bucket
            exemplar = exemplars[0]
            assert 0 < exemplar.reduced_lines <= exemplar.original_lines

    def test_render_matrix_mentions_every_family(self, report):
        text = "\n".join(report.render_matrix())
        for family in NEW_FAMILIES:
            assert family in text

    def test_events_recorded_for_fault_families(self, report):
        # pac_reuse/heap_cross arm a fault; at least the unmutated
        # index-0 mutant must log fired sites somewhere in the matrix.
        for family in FAMILY_FAULTS:
            fired = [
                run
                for run in report.runs
                if run.mutant.family == family and run.events
            ]
            assert fired, family


class TestCampaignArguments:
    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown attack family"):
            run_campaign(seed=1, budget=1, families=("nope",))

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            run_campaign(seed=1, budget=0, families=NEW_FAMILIES)
