"""Delta-debugging edge cases (satellite for the campaign PR).

The campaign engine leans on :func:`reduce_source` to minimize bypass
exemplars, so the degenerate shapes -- nothing to remove, everything
load-bearing, reductions that mutate the failure -- must all come back
as *valid* reproducers, never as empty or signature-shifted sources.
"""

import pytest

from repro.robustness import ddmin, make_crash_predicate, reduce_source
from repro.robustness.reduce import crash_signature


class TestSingleStatement:
    #: One statement, and it is the bug: there is nothing to strip.
    CRASHER = "int main() { return undeclared_name; }"

    def test_single_statement_program_survives_whole(self):
        predicate, signature = make_crash_predicate(self.CRASHER)
        assert signature is not None
        reduced = reduce_source(self.CRASHER, predicate)
        assert predicate(reduced)
        assert "undeclared_name" in reduced
        # A one-liner cannot shrink below itself.
        assert reduced.strip() == self.CRASHER.strip()

    def test_single_item_list_is_its_own_minimum(self):
        assert ddmin(["only"], lambda c: c == ["only"]) == ["only"]


class TestEveryChunkLoadBearing:
    def test_ddmin_keeps_everything_when_all_items_matter(self):
        items = list(range(8))

        def predicate(candidate):
            return candidate == items

        assert ddmin(items, predicate) == items

    def test_reduce_source_keeps_interdependent_lines(self):
        # Every line participates in the crash: main calls helper,
        # helper trips the sema failure.  Dropping any line either
        # breaks the call chain (parse/sema error of a *different*
        # signature) or removes the bug.
        source = (
            "int helper(int x) { return x + undeclared_name; }\n"
            "int main() { return helper(1); }\n"
        )
        predicate, signature = make_crash_predicate(source)
        assert signature is not None
        reduced = reduce_source(source, predicate)
        assert predicate(reduced)
        assert "undeclared_name" in reduced


class TestSignatureStability:
    #: Two distinct bugs: removing the first line would "reduce" the
    #: source to one that still crashes -- but with a different
    #: fingerprint.  The predicate must reject such candidates so the
    #: reduction never drifts to a different failure.
    TWO_BUGS = (
        "int main() {\n"
        "    int x = first_missing_name;\n"
        "    int y = 0;\n"
        "    return y / 0;\n"
        "}\n"
    )

    def test_reduction_never_changes_the_fingerprint(self):
        predicate, signature = make_crash_predicate(self.TWO_BUGS)
        assert signature is not None
        reduced = reduce_source(self.TWO_BUGS, predicate)
        # Whatever it shrank to, it reproduces the *original* failure.
        assert crash_signature(reduced) == signature

    def test_fingerprint_changing_candidate_is_rejected(self):
        predicate, signature = make_crash_predicate(self.TWO_BUGS)
        # A candidate exposing only the second bug has a different
        # signature, so the predicate must say "not interesting".
        other = "int main() { int y = 0; return y / 0; }"
        other_sig = crash_signature(other)
        if other_sig is not None:
            assert other_sig != signature
        assert predicate(other) is False

    def test_original_kept_when_no_candidate_shares_the_signature(self):
        # A predicate that holds only on the exact original forces
        # ddmin to return the input unchanged rather than something
        # smaller-but-different.
        predicate, signature = make_crash_predicate(self.TWO_BUGS)
        original_lines = self.TWO_BUGS.splitlines()

        def exact(candidate):
            return candidate == original_lines

        assert ddmin(original_lines, exact) == original_lines


class TestPredicateBudget:
    def test_zero_budget_returns_input(self):
        items = list(range(16))
        result = ddmin(items, lambda c: 7 in c, max_tests=0)
        # No probes allowed: the (verified) input is the best we have.
        assert 7 in result
