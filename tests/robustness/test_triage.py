"""Crash fingerprinting and bucketing."""

import pytest

from repro.frontend import SemaError, compile_source
from repro.robustness import (
    CrashRecord,
    crash_fingerprint,
    fingerprint_from_frames,
    record_crash,
    triage,
    triage_exceptions,
)
from repro.robustness.triage import MAX_FRAMES


def capture(source):
    """Compile a bad source and hand back the raised exception."""
    with pytest.raises(Exception) as info:
        compile_source(source)
    return info.value


class TestFingerprint:
    def test_includes_type_and_repro_frames(self):
        exc = capture("int main() { return bogus; }")
        fingerprint = crash_fingerprint(exc)
        assert fingerprint.startswith("SemaError|")
        assert "compile_source" in fingerprint

    def test_message_does_not_change_the_bucket(self):
        # Different undeclared identifiers -> different messages, same
        # failure path, same fingerprint.
        first = capture("int main() { return bogus; }")
        second = capture("int main() { return other_name; }")
        assert str(first) != str(second)
        assert crash_fingerprint(first) == crash_fingerprint(second)

    def test_different_failure_paths_differ(self):
        sema = capture("int main() { return bogus; }")
        parse = capture("int main( {")
        assert crash_fingerprint(sema) != crash_fingerprint(parse)

    def test_frames_outside_the_package_are_dropped(self):
        try:
            raise ValueError("raised from test code")
        except ValueError as exc:
            assert crash_fingerprint(exc) == "ValueError|"

    def test_parity_with_preextracted_frames(self):
        exc = capture("int main() { return bogus; }")
        from repro.robustness.triage import repro_frames

        frames = repro_frames(exc)
        assert fingerprint_from_frames("SemaError", frames) == crash_fingerprint(exc)

    def test_long_stacks_keep_only_the_innermost_frames(self):
        frames = [f"f{i}" for i in range(MAX_FRAMES + 4)]
        fingerprint = fingerprint_from_frames("RuntimeError", frames)
        assert "f0" not in fingerprint
        assert fingerprint.endswith(">".join(frames[-MAX_FRAMES:]))


class TestTriage:
    def records(self):
        return [
            CrashRecord("t1", "ValueError", "boom 1", "ValueError|a>b"),
            CrashRecord("t2", "ValueError", "boom 2", "ValueError|a>b"),
            CrashRecord("t3", "KeyError", "missing", "KeyError|c"),
        ]

    def test_same_fingerprint_same_bucket(self):
        report = triage(self.records())
        assert report.total_crashes == 3
        assert report.counts() == {"ValueError|a>b": 2, "KeyError|c": 1}

    def test_exemplar_is_first_observed(self):
        report = triage(self.records())
        assert report.exemplar("ValueError|a>b").task == "t1"

    def test_summary_names_count_and_exemplar(self):
        lines = report = triage(self.records()).summary_lines()
        assert any("2x" in line and "t1" in line for line in lines)

    def test_triage_exceptions_convenience(self):
        pairs = [
            ("a", capture("int main() { return bogus; }")),
            ("b", capture("int main() { return undeclared; }")),
        ]
        report = triage_exceptions(pairs)
        assert report.total_crashes == 2
        assert len(report.buckets) == 1

    def test_record_crash_captures_message(self):
        exc = capture("int main() { return bogus; }")
        record = record_crash("task-x", exc)
        assert record.task == "task-x"
        assert record.exc_type == "SemaError"
        assert "bogus" in record.message
        assert record.to_dict()["fingerprint"] == record.fingerprint
