"""Chaos harness: defense contract and run-over-run determinism."""

import json

import pytest

from repro.robustness import FaultPlan, FaultSpec, smoke_plan
from repro.robustness.chaos import CONTRACT_STATUS, run_chaos


@pytest.fixture(scope="module")
def smoke_reports():
    """The same smoke plan run twice -- the determinism artifact."""
    plan = smoke_plan(2024)
    return run_chaos(plan, seed=2024), run_chaos(plan, seed=2024)


class TestDefenseContract:
    def test_no_violations_on_the_smoke_plan(self, smoke_reports):
        report, _ = smoke_reports
        assert report.ok, [case.to_dict() for case in report.contract_violations()]

    def test_every_spec_produced_a_case(self, smoke_reports):
        report, _ = smoke_reports
        assert len(report.cases) == len(report.plan.specs)

    def test_pac_faults_trap_at_authentication(self, smoke_reports):
        report, _ = smoke_reports
        for case in report.cases:
            if case.kind in ("pac.bits", "pac.key"):
                assert case.classification == "contained"
                assert case.status == "pac_trap"

    def test_dfi_fault_raises_a_dfi_violation(self, smoke_reports):
        report, _ = smoke_reports
        (case,) = [c for c in report.cases if c.kind == "dfi.shadow"]
        assert case.classification == "contained"
        assert case.status == "dfi_trap"

    def test_cache_faults_recompile_silently(self, smoke_reports):
        report, _ = smoke_reports
        for case in report.cases:
            if case.kind.startswith("cache."):
                assert case.classification == "contained"
                assert case.status in ("miss", "cache-off")

    def test_strict_kinds_all_fired(self, smoke_reports):
        report, _ = smoke_reports
        for case in report.cases:
            if case.kind in CONTRACT_STATUS:
                assert case.events, f"{case.kind} never fired"

    def test_no_triage_buckets_when_contained(self, smoke_reports):
        report, _ = smoke_reports
        assert report.triage.total_crashes == 0
        assert report.triage.counts() == {}


class TestDeterminism:
    def test_same_seed_same_fault_sites_and_buckets(self, smoke_reports):
        first, second = smoke_reports
        # Identical fault sites (the event logs embed addresses, bit
        # positions, and key ids) and identical classifications...
        assert first.signature() == second.signature()
        # ...and identical triage buckets.
        assert first.triage.to_dict() == second.triage.to_dict()

    def test_manifest_is_json_serializable_and_stable(self, smoke_reports):
        first, second = smoke_reports
        assert json.dumps(first.to_manifest(), sort_keys=True) == json.dumps(
            second.to_manifest(), sort_keys=True
        )


class TestContractViolationDetection:
    def test_untriggered_strict_fault_is_a_violation(self):
        # A PAC fault with an absurd trigger never fires; the report
        # must flag it instead of quietly passing.
        plan = FaultPlan(
            seed=2024, specs=(FaultSpec("pac.bits", trigger=10**9),)
        )
        report = run_chaos(plan, seed=2024)
        assert not report.ok
        (case,) = report.cases
        assert case.classification == "not-triggered"

    def test_loose_kind_may_diverge_without_violating(self):
        # mem.flip has no strict contract: silent divergence is
        # recorded but is not a violation.
        plan = FaultPlan(
            seed=2024, specs=(FaultSpec("mem.flip", trigger=64),)
        )
        report = run_chaos(plan, seed=2024)
        (case,) = report.cases
        assert case.classification in (
            "benign",
            "diverged",
            "detected",
            "faulted",
        )
        assert report.ok


class TestInterpreterInterop:
    def test_block_tier_sees_identical_fault_sites(self, smoke_reports):
        # PR 3's fault hooks fire from Memory/PAC/DfiShadow/cache, which
        # the block tier's fast paths must route through unchanged: the
        # same plan under ``--interpreter=block`` must inject at the
        # same sites and classify every case identically.
        baseline, _ = smoke_reports
        block = run_chaos(smoke_plan(2024), seed=2024, interpreter="block")
        assert block.signature() == baseline.signature()
        assert block.triage.to_dict() == baseline.triage.to_dict()
        assert json.dumps(block.to_manifest(), sort_keys=True) == json.dumps(
            baseline.to_manifest(), sort_keys=True
        )

    def test_trace_tier_sees_identical_fault_sites(self, smoke_reports):
        # The trace tier memoizes PAC auth/sign and probes the PAC cache
        # inline from generated code, so it is the tier most at risk of
        # hiding an injected fault: the inline sign probe must stand
        # down while a fault hook is armed, and the memo key carries
        # ``key_epoch`` so ``pac.key`` faults (corrupt_key mid-run)
        # invalidate every cached tag.  Same plan, same sites, same
        # classifications as the reference baseline proves all of it.
        baseline, _ = smoke_reports
        trace = run_chaos(smoke_plan(2024), seed=2024, interpreter="trace")
        assert trace.signature() == baseline.signature()
        assert trace.triage.to_dict() == baseline.triage.to_dict()
        assert json.dumps(trace.to_manifest(), sort_keys=True) == json.dumps(
            baseline.to_manifest(), sort_keys=True
        )
