"""Delta-debugging minimization."""

import pytest

from repro.robustness import ddmin, make_crash_predicate, reduce_source


class TestDdmin:
    def test_minimizes_to_the_interesting_subset(self):
        items = list(range(20))

        def predicate(candidate):
            return 3 in candidate and 15 in candidate

        assert ddmin(items, predicate) == [3, 15]

    def test_single_interesting_item(self):
        assert ddmin(list(range(32)), lambda c: 17 in c) == [17]

    def test_preserves_order(self):
        result = ddmin(list(range(10)), lambda c: {2, 5, 8} <= set(c))
        assert result == [2, 5, 8]

    def test_rejects_non_reproducing_input(self):
        with pytest.raises(ValueError, match="does not hold"):
            ddmin([1, 2, 3], lambda c: False)

    def test_respects_the_test_budget(self):
        calls = []

        def predicate(candidate):
            calls.append(1)
            return 0 in candidate

        ddmin(list(range(64)), predicate, max_tests=10)
        # initial sanity check + at most max_tests probes
        assert len(calls) <= 11


class TestReduceSource:
    #: The sema failure lives on one line; the padding is droppable.
    CRASHER = """
int helper(int x) {
    int doubled = x * 2;
    return doubled;
}

int main() {
    int a = 1;
    int b = 2;
    int c = a + b;
    printf("%d\\n", c);
    return undeclared_name;
}
"""

    def test_reduces_to_a_minimal_same_signature_crasher(self):
        predicate, signature = make_crash_predicate(self.CRASHER)
        assert signature is not None
        assert signature.startswith("SemaError|")
        reduced = reduce_source(self.CRASHER, predicate)
        # Still the same bug...
        assert predicate(reduced)
        # ...in a fraction of the source: the helper and the padding
        # statements are gone, the failing return remains.
        assert "undeclared_name" in reduced
        assert "helper" not in reduced
        assert "printf" not in reduced
        assert len(reduced.splitlines()) <= 4

    def test_clean_source_has_no_signature(self):
        predicate, signature = make_crash_predicate(
            "int main() { return 0; }"
        )
        assert signature is None
        assert predicate("int main() { return bogus; }") is False

    def test_trap_signature_distinguishes_status(self):
        from repro.robustness.reduce import crash_signature

        clean = crash_signature("int main() { return 0; }")
        assert clean is None
        sema = crash_signature("int main() { return bogus; }")
        assert sema is not None and sema.startswith("SemaError|")
