"""Fault-plan plumbing and injection determinism."""

import pytest

from repro.core import protect
from repro.frontend import compile_source
from repro.hardware import CPU
from repro.robustness import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    smoke_plan,
)

#: gets() feeds a branch through buf, so cpa signs its accesses and the
#: PAC sign stream has events for pac.* specs to fire on.
VICTIM = """
int main() {
    char buf[16];
    gets(buf);
    if (strncmp(buf, "key", 3) == 0) { printf("yes\\n"); return 1; }
    printf("no\\n");
    return 0;
}
"""


@pytest.fixture(scope="module")
def cpa_module():
    return protect(compile_source(VICTIM), scheme="cpa").module


def run_with_injector(module, plan, only=None, seed=2024):
    injector = FaultInjector(plan, only=only)
    cpu = CPU(module, seed=seed)
    injector.arm(cpu)
    result = cpu.run(inputs=[b"nope"])
    return injector, result


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("pac.typo")

    def test_trigger_must_be_positive(self):
        with pytest.raises(ValueError, match="trigger"):
            FaultSpec("mem.flip", trigger=0)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError, match="count"):
            FaultSpec("mem.flip", count=0)

    def test_every_kind_has_a_stream(self):
        for kind in FAULT_KINDS:
            FaultSpec(kind)  # does not raise


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = smoke_plan(7)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan

    def test_from_json_rejects_non_plan(self):
        with pytest.raises(ValueError, match="specs"):
            FaultPlan.from_json("[1, 2, 3]")

    def test_smoke_plan_covers_every_kind(self):
        kinds = {spec.kind for spec in smoke_plan().specs}
        assert kinds == set(FAULT_KINDS)


class TestDeterminism:
    PLAN = FaultPlan(
        seed=99,
        specs=(
            FaultSpec("pac.bits", trigger=1),
            FaultSpec("mem.flip", trigger=1, count=2),
        ),
    )

    def test_same_plan_same_fault_sites(self, cpa_module):
        first, _ = run_with_injector(cpa_module, self.PLAN)
        second, _ = run_with_injector(cpa_module, self.PLAN)
        assert first.fired
        assert first.event_log() == second.event_log()

    def test_only_restricts_to_one_spec(self, cpa_module):
        injector, _ = run_with_injector(cpa_module, self.PLAN, only=1)
        assert injector.fired
        assert {event.kind for event in injector.events} == {"mem.flip"}
        assert {event.spec_index for event in injector.events} == {1}

    def test_only_is_deterministic_too(self, cpa_module):
        first, _ = run_with_injector(cpa_module, self.PLAN, only=1)
        second, _ = run_with_injector(cpa_module, self.PLAN, only=1)
        assert first.event_log() == second.event_log()

    def test_pac_bit_fault_traps(self, cpa_module):
        plan = FaultPlan(seed=5, specs=(FaultSpec("pac.bits", trigger=1),))
        injector, result = run_with_injector(cpa_module, plan)
        assert injector.fired
        assert result.status == "pac_trap"

    def test_pac_key_fault_traps(self, cpa_module):
        plan = FaultPlan(seed=5, specs=(FaultSpec("pac.key", trigger=1),))
        injector, result = run_with_injector(cpa_module, plan)
        assert injector.fired
        assert result.status == "pac_trap"

    def test_unarmed_run_is_clean(self, cpa_module):
        result = CPU(cpa_module, seed=2024).run(inputs=[b"nope"])
        assert result.status == "ok"
