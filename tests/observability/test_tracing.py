"""The tracer: spans, instants, merging, and the Chrome-trace export."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.observability import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Tracer,
    chrome_trace,
    current_tracer,
    disable_tracing,
    enable_tracing,
    install_tracer,
    write_trace,
)


@pytest.fixture(autouse=True)
def _restore_tracer():
    previous = current_tracer()
    yield
    install_tracer(previous)


class TestTracer:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("work", "compile", detail="x"):
            pass
        (event,) = tracer.events
        assert event["name"] == "work"
        assert event["cat"] == "compile"
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["pid"] == os.getpid()
        assert event["tid"] == threading.get_ident()
        assert event["args"] == {"detail": "x"}

    def test_spans_nest_and_order_by_timestamp(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events  # inner *exits* (and records) first
        assert inner["name"] == "inner"
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_span_records_on_exception_too(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [event["name"] for event in tracer.events] == ["doomed"]

    def test_instant_shape(self):
        tracer = Tracer()
        tracer.instant("cache.hit", "cache", key="abc")
        (event,) = tracer.events
        assert event["ph"] == "i"
        assert event["s"] == "p"
        assert "dur" not in event
        assert event["args"] == {"key": "abc"}

    def test_adopt_merges_worker_events(self):
        parent, worker = Tracer(), Tracer()
        with worker.span("task"):
            pass
        parent.adopt(worker.events)
        assert [event["name"] for event in parent.events] == ["task"]


class TestNullTracer:
    def test_disabled_operations_record_nothing(self):
        tracer = NullTracer()
        with tracer.span("ignored", "x", a=1):
            pass
        tracer.instant("ignored")
        tracer.add_complete("ignored", "x", 0, 1)
        tracer.adopt([{"name": "ignored"}])
        assert tracer.events == []
        assert not tracer.enabled

    def test_span_is_the_shared_singleton(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestGlobalInstall:
    def test_default_is_the_null_tracer(self):
        disable_tracing()
        assert current_tracer() is NULL_TRACER

    def test_enable_then_disable(self):
        tracer = enable_tracing("test-proc")
        assert current_tracer() is tracer
        assert tracer.process_name == "test-proc"
        disable_tracing()
        assert current_tracer() is NULL_TRACER

    def test_install_returns_previous(self):
        mine = Tracer()
        previous = install_tracer(mine)
        assert current_tracer() is mine
        assert install_tracer(previous) is mine


class TestChromeExport:
    def events(self):
        tracer = Tracer()
        with tracer.span("phase", "compile"):
            tracer.instant("hit", "cache")
        return tracer.events

    def test_schema_and_rebased_microseconds(self):
        events = self.events()
        out = chrome_trace(events)
        assert out["schema"] == TRACE_SCHEMA
        assert out["displayTimeUnit"] == "ms"
        spans = [e for e in out["traceEvents"] if e.get("ph") == "X"]
        base = min(e["ts"] for e in events)
        for original, converted in zip(
            [e for e in events if e["ph"] == "X"], spans
        ):
            assert converted["ts"] == (original["ts"] - base) / 1000.0
            assert converted["dur"] == original["dur"] / 1000.0

    def test_process_metadata_per_pid(self):
        events = self.events() + [
            {"name": "w", "cat": "x", "ph": "X", "ts": 5, "dur": 1,
             "pid": 99999, "tid": 1}
        ]
        out = chrome_trace(events, process_names={99999: "worker"})
        meta = {
            e["pid"]: e["args"]["name"]
            for e in out["traceEvents"]
            if e.get("ph") == "M"
        }
        assert meta[99999] == "worker"
        assert meta[os.getpid()] == f"repro[{os.getpid()}]"

    def test_write_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        write_trace(str(path), self.events())
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == TRACE_SCHEMA
        assert {e["ph"] for e in loaded["traceEvents"]} == {"M", "X", "i"}

    def test_empty_events_still_export(self, tmp_path):
        path = tmp_path / "trace.json"
        write_trace(str(path), [])
        assert json.loads(path.read_text())["traceEvents"] == []
