"""Golden guarantee: observing a run never changes the run.

Tracing, metrics publication, and the profiler only *read* the
interpreter's architectural counters, so a fully-instrumented execution
must retire bit-identical results to a bare one -- on every interpreter
tier.  Any divergence here means observability leaked into semantics.
"""

from __future__ import annotations

import pytest

from repro.core.framework import protect
from repro.hardware import CPU
from repro.observability import (
    ExecutionProfiler,
    MetricsRegistry,
    current_tracer,
    enable_tracing,
    get_metrics,
    install_metrics,
    install_tracer,
    publish_execution,
)
from repro.workloads import generate_program, get_profile

#: Every architectural field an ExecutionResult exposes; wall-clock and
#: decode timing are measurements of the host, not the machine.
GOLDEN_FIELDS = (
    "status",
    "return_value",
    "cycles",
    "instructions",
    "ipc",
    "steps",
    "output",
    "pac_sign_count",
    "pac_auth_count",
    "pa_dynamic",
    "isolated_allocations",
)

TIERS = ("reference", "decoded", "block")


@pytest.fixture(scope="module")
def workload():
    program = generate_program(get_profile("519.lbm_r"))
    module = protect(program.compile(), scheme="pythia").module
    return module, program.inputs


@pytest.mark.parametrize("interpreter", TIERS)
def test_traced_run_is_bit_identical_to_untraced(workload, interpreter):
    module, inputs = workload
    bare = CPU(module, interpreter=interpreter).run(inputs=list(inputs))

    previous_tracer = current_tracer()
    previous_metrics = install_metrics(MetricsRegistry())
    try:
        tracer = enable_tracing("golden")
        with tracer.span("execute", "exec"):
            observed = CPU(
                module, interpreter=interpreter, profiler=ExecutionProfiler()
            ).run(inputs=list(inputs))
        publish_execution(get_metrics(), observed, scheme="pythia")
        assert tracer.events  # tracing really was on
    finally:
        install_tracer(previous_tracer)
        install_metrics(previous_metrics)

    for field in GOLDEN_FIELDS:
        assert getattr(observed, field) == getattr(bare, field), field
    assert observed.opcode_counts == bare.opcode_counts


def test_published_counters_mirror_the_result(workload):
    module, inputs = workload
    result = CPU(module, interpreter="block").run(inputs=list(inputs))
    registry = MetricsRegistry()
    publish_execution(registry, result, scheme="pythia")
    counters = registry.snapshot()["counters"]
    assert counters["exec.steps"] == result.steps
    assert counters["exec.instructions"] == result.instructions
    assert counters["exec.pac_sign"] == result.pac_sign_count
    assert counters["exec.pac_auth"] == result.pac_auth_count
    assert counters["exec.scheme.pythia.steps"] == result.steps
    assert "exec.trap.ok" not in counters  # ok runs record no trap counter
