"""The security-event pipeline: records, the ring, files, the global log."""

from __future__ import annotations

import json
import os

import pytest

from repro.observability import (
    EVENT_TYPES,
    EVENTS_SCHEMA,
    EventLog,
    get_event_log,
    install_event_log,
    make_event,
    read_events,
    reset_event_log,
    validate_event,
    write_events,
)


@pytest.fixture(autouse=True)
def _restore_log():
    previous = get_event_log()
    yield
    install_event_log(previous)


class TestMakeEvent:
    def test_stamps_clocks_pid_and_schema(self):
        event = make_event("trap", scheme="pythia")
        assert event["schema"] == EVENTS_SCHEMA
        assert event["type"] == "trap"
        assert event["pid"] == os.getpid()
        assert event["ts_wall"] > 0
        assert isinstance(event["ts_mono_ns"], int)
        assert event["scheme"] == "pythia"

    def test_detail_collects_extra_fields(self):
        event = make_event("worker-crash", shard=3, exitcode=-9)
        assert event["detail"] == {"shard": 3, "exitcode": -9}

    def test_unknown_type_is_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            make_event("meltdown")

    def test_every_declared_type_constructs(self):
        for kind in EVENT_TYPES:
            assert validate_event(make_event(kind)) is None

    def test_records_are_json_serializable(self):
        event = make_event("trap", request_id=7, rid="r1", status="pac_trap")
        assert json.loads(json.dumps(event)) == event


class TestEventLog:
    def test_emit_appends_and_counts(self):
        log = EventLog()
        log.emit("trap", scheme="dfi")
        log.emit("worker-restart", shard=0)
        assert log.emitted == 2
        assert log.dropped == 0
        assert [e["type"] for e in log.snapshot()] == ["trap", "worker-restart"]

    def test_ring_drops_oldest_and_accounts(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.emit("trap", case=index)
        assert log.emitted == 5
        assert log.dropped == 2
        assert [e["detail"]["case"] for e in log.snapshot()] == [2, 3, 4]

    def test_snapshot_limit_returns_newest(self):
        log = EventLog()
        for index in range(4):
            log.emit("trap", case=index)
        assert [e["detail"]["case"] for e in log.snapshot(limit=2)] == [2, 3]
        assert log.snapshot(limit=0) == []
        assert len(log.snapshot(limit=100)) == 4

    def test_adopt_preserves_origin_pid_and_clocks(self):
        worker = EventLog()
        record = worker.emit("trap", rid="r9")
        record["pid"] = 4242  # simulate a record from another process
        parent = EventLog()
        parent.adopt(worker.snapshot())
        adopted = parent.snapshot()[0]
        assert adopted["pid"] == 4242
        assert adopted["rid"] == "r9"
        assert parent.emitted == 1

    def test_zero_capacity_is_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            EventLog(capacity=0)


class TestValidate:
    def test_accepts_valid_record(self):
        assert validate_event(make_event("slo-breach", target="p99_latency")) is None

    def test_rejects_non_dict(self):
        assert validate_event([]) is not None

    def test_rejects_wrong_schema(self):
        record = make_event("trap")
        record["schema"] = "nope"
        assert "schema" in validate_event(record)

    def test_rejects_unknown_type(self):
        record = make_event("trap")
        record["type"] = "meltdown"
        assert "unknown event type" in validate_event(record)

    def test_rejects_missing_required_field(self):
        record = make_event("trap")
        del record["ts_mono_ns"]
        assert "ts_mono_ns" in validate_event(record)

    def test_rejects_non_string_rid(self):
        record = make_event("trap")
        record["rid"] = 17
        assert "rid" in validate_event(record)

    def test_rejects_non_object_detail(self):
        record = make_event("trap")
        record["detail"] = "boom"
        assert "detail" in validate_event(record)


class TestFiles:
    def test_write_read_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("trap", request_id=1, rid="r1", scheme="pythia")
        log.emit("fault-injected", kind="cache_corrupt_entry")
        path = str(tmp_path / "events.jsonl")
        assert write_events(path, log.snapshot()) == 2
        assert read_events(path) == log.snapshot()

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        record = make_event("trap")
        path.write_text(json.dumps(record) + "\n\n")
        assert read_events(str(path)) == [record]

    def test_read_names_the_offending_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps(make_event("trap")) + "\nnot json\n")
        with pytest.raises(ValueError, match=r"events\.jsonl:2"):
            read_events(str(path))

    def test_read_rejects_invalid_record(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"schema": "nope"}\n')
        with pytest.raises(ValueError, match="schema"):
            read_events(str(path))


class TestGlobalLog:
    def test_reset_installs_fresh(self):
        get_event_log().emit("trap")
        fresh = reset_event_log()
        assert get_event_log() is fresh
        assert fresh.snapshot() == []

    def test_install_swaps_the_log(self):
        mine = EventLog()
        previous = install_event_log(mine)
        try:
            get_event_log().emit("worker-restart", shard=1)
            assert mine.emitted == 1
        finally:
            install_event_log(previous)
