"""Rolling-window aggregation: buckets, sketches, windows, the dashboard."""

from __future__ import annotations

import json

import pytest

from repro.observability import (
    QuantileSketch,
    WindowAggregator,
    bucket_index,
    percentile_from_buckets,
    render_dashboard,
)
from repro.observability.aggregate import BUCKET_BASE, ZERO_BUCKET, bucket_value


class TestBuckets:
    def test_zero_and_negative_share_the_sentinel(self):
        assert bucket_index(0.0) == ZERO_BUCKET
        assert bucket_index(-3.0) == ZERO_BUCKET
        assert bucket_value(ZERO_BUCKET) == 0.0

    def test_representative_value_lands_in_its_bucket(self):
        for value in (1e-9, 0.003, 1.0, 17.2, 3600.0):
            index = bucket_index(value)
            assert bucket_index(bucket_value(index)) == index

    def test_relative_error_is_bounded_by_half_a_bucket(self):
        for value in (0.0001, 0.37, 42.0):
            approx = bucket_value(bucket_index(value))
            ratio = approx / value
            assert 1 / BUCKET_BASE <= ratio <= BUCKET_BASE

    def test_percentile_accepts_string_keys(self):
        # JSON round-trips dict keys to strings.
        buckets = {bucket_index(0.010): 99, bucket_index(1.0): 1}
        via_json = json.loads(json.dumps(buckets))
        assert percentile_from_buckets(via_json, 50.0) == pytest.approx(
            0.010, rel=0.10
        )
        assert percentile_from_buckets(via_json, 100.0) == pytest.approx(
            1.0, rel=0.10
        )

    def test_percentile_of_empty_is_zero(self):
        assert percentile_from_buckets({}, 99.0) == 0.0


class TestQuantileSketch:
    def test_quantiles_track_the_distribution(self):
        sketch = QuantileSketch()
        for ms in range(1, 101):
            sketch.add(ms / 1000.0)
        assert sketch.count == 100
        assert sketch.quantile(50.0) == pytest.approx(0.050, rel=0.10)
        assert sketch.quantile(99.0) == pytest.approx(0.099, rel=0.10)

    def test_edges_are_exact(self):
        sketch = QuantileSketch()
        for value in (0.013, 0.5, 2.75):
            sketch.add(value)
        assert sketch.quantile(0.0) == 0.013
        assert sketch.quantile(100.0) == 2.75
        # interior estimates are clamped to the true extremes
        assert 0.013 <= sketch.quantile(99.0) <= 2.75

    def test_merge_equals_single_sketch(self):
        left, right, union = QuantileSketch(), QuantileSketch(), QuantileSketch()
        for value in (0.001, 0.01, 0.1):
            left.add(value)
            union.add(value)
        for value in (1.0, 10.0):
            right.add(value)
            union.add(value)
        left.merge(right)
        assert left.buckets == union.buckets
        assert left.count == union.count
        assert left.summary() == union.summary()

    def test_empty_summary_is_all_zero(self):
        assert QuantileSketch().summary() == {
            "count": 0,
            "mean": 0.0,
            "p50": 0.0,
            "p90": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }


class TestWindowAggregator:
    def test_counters_expire_as_the_window_slides(self):
        window = WindowAggregator(window_s=10.0, buckets=10)
        window.inc("requests", 5, now=100.0)
        counters, _, _ = window.totals(now=105.0)
        assert counters["requests"] == 5
        counters, _, _ = window.totals(now=120.0)
        assert counters.get("requests", 0) == 0

    def test_horizon_restricts_the_read(self):
        window = WindowAggregator(window_s=60.0, buckets=12)
        window.inc("requests", now=100.0)  # old
        window.inc("requests", now=130.0)  # recent
        counters, _, _ = window.totals(now=131.0)
        assert counters["requests"] == 2
        counters, _, _ = window.totals(horizon_s=10.0, now=131.0)
        assert counters["requests"] == 1

    def test_observations_merge_across_slices(self):
        window = WindowAggregator(window_s=60.0, buckets=12)
        window.observe("latency", 0.010, now=100.0)
        window.observe("latency", 0.020, now=110.0)
        _, sketches, _ = window.totals(now=111.0)
        assert sketches["latency"].count == 2

    def test_stale_slices_are_pruned_on_write(self):
        window = WindowAggregator(window_s=10.0, buckets=5)
        window.inc("requests", now=100.0)
        window.inc("requests", now=500.0)
        assert len(window._slices) == 1

    def test_summary_shape_and_rates(self):
        window = WindowAggregator(window_s=10.0, buckets=10)
        window.started_at = 90.0
        for _ in range(20):
            window.inc("requests", now=100.0)
        window.observe("latency", 0.05, now=100.0)
        summary = window.summary(now=100.0)
        assert summary["counters"]["requests"] == 20
        assert summary["rates"]["requests"] == pytest.approx(2.0)
        assert summary["quantiles"]["latency"]["count"] == 1
        assert json.loads(json.dumps(summary)) == summary

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            WindowAggregator(window_s=0.0)
        with pytest.raises(ValueError):
            WindowAggregator(window_s=10.0, buckets=0)


class TestDashboard:
    STATS = {
        "endpoint": "/tmp/serve.sock",
        "uptime_s": 12.0,
        "workers": 2,
        "worker_restarts": 1,
        "inflight": 0,
        "window": {
            "window_s": 60.0,
            "counters": {
                "requests": 100,
                "errors": 5,
                "coalesced": 3,
                "traps": 2,
                "traps.pythia": 2,
            },
            "rates": {"requests": 1.7},
        },
        "latency_ms": {"run": {"count": 90, "p50": 4.0, "p90": 9.0, "p99": 20.0}},
        "events": {"emitted": 7, "buffered": 7, "dropped": 0},
    }

    def test_renders_every_section(self):
        text = "\n".join(render_dashboard(self.STATS))
        assert "2 worker(s), 1 restart(s)" in text
        assert "1.7 req/s" in text
        assert "errors   5.0%" in text
        assert "run" in text and "20.0" in text
        assert "traps/scheme: pythia=2" in text
        assert "events: 7 emitted, 7 buffered, 0 dropped" in text

    def test_tolerates_a_bare_stats_payload(self):
        # Older daemons (or `stats` before any traffic) omit the
        # enriched keys entirely.
        lines = render_dashboard({"endpoint": "x", "workers": 0})
        assert any("repro serve @ x" in line for line in lines)
