"""phase_span: one clock reading feeding timings, metrics, and trace."""

from __future__ import annotations

import pytest

from repro.core.framework import protect
from repro.frontend import compile_source
from repro.observability import (
    MetricsRegistry,
    Tracer,
    current_tracer,
    get_metrics,
    install_metrics,
    install_tracer,
    phase_span,
)

PREFIX = "compile.phase."


@pytest.fixture(autouse=True)
def _fresh_globals():
    previous_metrics = install_metrics(MetricsRegistry())
    previous_tracer = install_tracer(Tracer("test"))
    yield
    install_metrics(previous_metrics)
    install_tracer(previous_tracer)


def test_all_three_views_agree():
    timings = {}
    with phase_span("verify", timings):
        pass
    (event,) = current_tracer().events
    stats = get_metrics().snapshot()["histograms"][f"{PREFIX}verify"]
    assert event["name"] == "verify"
    # one clock delta, three sinks: the values are float-identical
    assert timings["verify"] == stats["sum"]
    assert event["dur"] == pytest.approx(stats["sum"] * 1e9)


def test_key_may_differ_from_metric_name():
    timings = {}
    with phase_span("pass:mem2reg", timings, key="mem2reg"):
        pass
    assert list(timings) == ["mem2reg"]
    assert list(get_metrics().snapshot()["histograms"]) == [f"{PREFIX}pass:mem2reg"]


def test_repeated_phases_accumulate():
    timings = {}
    for _ in range(3):
        with phase_span("verify", timings):
            pass
    stats = get_metrics().snapshot()["histograms"][f"{PREFIX}verify"]
    assert stats["count"] == 3
    assert timings["verify"] == pytest.approx(stats["sum"])


def test_protect_phase_metrics_match_protection_timings():
    """The instrumented pipeline reports the same phases both ways --
    the invariant the ``--timings`` port relies on."""
    module = compile_source("int main() { return 0; }", name="t")
    protected = protect(module, scheme="pythia")
    histograms = get_metrics().snapshot()["histograms"]
    phases = {
        name[len(PREFIX):]: stats["sum"]
        for name, stats in histograms.items()
        if name.startswith(PREFIX)
    }
    assert phases == protected.timings
