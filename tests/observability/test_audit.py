"""The offline security audit over exported events files."""

from __future__ import annotations

from repro.observability import audit_events, make_event, render_audit
from repro.observability.audit import TIMELINE_SLOTS


def trap(ts, **kwargs):
    event = make_event("trap", **kwargs)
    event["ts_wall"] = ts
    return event


class TestAuditEvents:
    def test_empty_input(self):
        report = audit_events([])
        assert report["events"] == 0
        assert report["traps"]["total"] == 0
        assert report["timeline"]["slots"] == []

    def test_groups_traps_by_scheme_family_status(self):
        events = [
            trap(1.0, rid="r1", scheme="pythia", scenario="ptr_swap", status="pac_trap"),
            trap(2.0, scheme="pythia", scenario="ptr_swap", status="pac_trap"),
            trap(3.0, scheme="dfi", family="uaf", status="dfi_trap"),
            make_event("worker-restart", shard=0),
        ]
        report = audit_events(events)
        assert report["events"] == 4
        assert report["by_type"] == {"trap": 3, "worker-restart": 1}
        traps = report["traps"]
        assert traps["total"] == 3
        assert traps["correlated"] == 1  # only the first carries a rid
        assert traps["by_scheme"] == {"dfi": 1, "pythia": 2}
        assert traps["by_family"] == {"ptr_swap": 2, "uaf": 1}
        assert traps["by_status"] == {"dfi_trap": 1, "pac_trap": 2}

    def test_ranks_top_offending_modules(self):
        events = [trap(1.0, module_digest="aaaa")] * 3 + [
            trap(2.0, module_digest="bbbb")
        ]
        report = audit_events(events)
        assert report["traps"]["top_modules"][0] == ("aaaa", 3)

    def test_timeline_buckets_the_span(self):
        events = [trap(0.0), trap(50.0), trap(100.0)]
        timeline = audit_events(events)["timeline"]
        assert (timeline["start_wall"], timeline["end_wall"]) == (0.0, 100.0)
        slots = timeline["slots"]
        assert len(slots) == TIMELINE_SLOTS
        assert sum(slots) == 3
        assert slots[0] == 1 and slots[-1] == 1


class TestRenderAudit:
    def test_quiet_file_renders_a_one_liner(self):
        lines = render_audit(audit_events([]), path="events.jsonl")
        assert lines[0].startswith("events.jsonl: 0 event(s)")
        assert "no defense traps recorded" in lines[1]

    def test_full_report_renders_every_section(self):
        events = [
            trap(1.0, rid="r1", scheme="pythia", scenario="ptr_swap",
                 status="pac_trap", module_digest="deadbeef" * 8),
            trap(9.0, scheme="dfi", family="uaf", status="dfi_trap"),
        ]
        text = "\n".join(render_audit(audit_events(events)))
        assert "traps: 2 total, 1 carrying a request id" in text
        assert "pythia" in text and "dfi" in text
        assert "top offending module digests" in text
        assert "attack timeline (8.0s span" in text
