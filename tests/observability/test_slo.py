"""SLO policies and burn-rate evaluation, plus the check_slo CI gate."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.observability import (
    SloPolicy,
    WindowAggregator,
    count_traps,
    evaluate_report,
    evaluate_window,
    make_event,
)

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
)
CHECK_SLO = os.path.join(REPO_ROOT, "tools", "check_slo.py")


class TestPolicy:
    def test_round_trips_through_dict(self):
        policy = SloPolicy(max_p99_ms=100.0, max_error_rate=0.01)
        assert SloPolicy.from_dict(policy.to_dict()) == policy

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown SLO policy field"):
            SloPolicy.from_dict({"max_p99ms": 100})

    def test_rejects_non_numeric_target(self):
        with pytest.raises(ValueError, match="not numeric"):
            SloPolicy.from_dict({"max_p99_ms": "fast"})

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text('{"max_p99_ms": 250, "description": "ci gate"}')
        policy = SloPolicy.from_json_file(str(path))
        assert policy.max_p99_ms == 250
        assert policy.description == "ci gate"

    def test_from_json_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="invalid SLO policy JSON"):
            SloPolicy.from_json_file(str(path))


class TestEvaluateReport:
    REPORT = {"requests": 100, "failures": 2, "p99_ms": 80.0}

    def test_within_budget_is_clean(self):
        policy = SloPolicy(max_p99_ms=100.0, max_error_rate=0.05)
        assert evaluate_report(policy, self.REPORT) == []

    def test_p99_breach_carries_burn_rate(self):
        policy = SloPolicy(max_p99_ms=40.0)
        (breach,) = evaluate_report(policy, self.REPORT)
        assert breach.target == "p99_latency"
        assert breach.burn_rate == pytest.approx(2.0)
        assert "80" in breach.message

    def test_sitting_exactly_at_the_target_is_within_slo(self):
        policy = SloPolicy(max_p99_ms=80.0)
        assert evaluate_report(policy, self.REPORT) == []

    def test_zero_error_budget_forbids_any_failure(self):
        policy = SloPolicy(max_error_rate=0.0)
        (breach,) = evaluate_report(policy, self.REPORT)
        assert breach.target == "error_rate"
        assert breach.burn_rate == float("inf")

    def test_burn_threshold_scales_the_budget(self):
        tolerant = SloPolicy(max_p99_ms=40.0, burn_threshold=3.0)
        assert evaluate_report(tolerant, self.REPORT) == []

    def test_trap_rate_needs_events(self):
        policy = SloPolicy(trap_rate_factor=2.0)
        assert evaluate_report(policy, self.REPORT) == []
        breaches = evaluate_report(
            policy, self.REPORT, trap_count=50, baseline_trap_rate=0.01
        )
        assert [b.target for b in breaches] == ["trap_rate"]

    def test_count_traps_filters_by_type(self):
        events = [make_event("trap"), make_event("worker-restart"), make_event("trap")]
        assert count_traps(events) == 2


class TestEvaluateWindow:
    def make_window(self, requests, errors, traps, latency_s):
        window = WindowAggregator(window_s=60.0)
        window.started_at = 0.0
        window.inc("requests", requests, now=100.0)
        if errors:
            window.inc("errors", errors, now=100.0)
        if traps:
            window.inc("traps", traps, now=100.0)
        for _ in range(requests):
            window.observe("latency", latency_s, now=100.0)
        return window.summary(now=100.0)

    def test_quiet_window_is_clean(self):
        policy = SloPolicy(max_p99_ms=100.0, max_error_rate=0.05, trap_rate_factor=5.0)
        summary = self.make_window(50, 0, 0, 0.010)
        assert evaluate_window(policy, summary, summary) == []

    def test_empty_window_never_breaches(self):
        policy = SloPolicy(max_p99_ms=0.001, max_error_rate=0.0)
        summary = self.make_window(0, 0, 0, 0.010)
        assert evaluate_window(policy, summary) == []

    def test_latency_burn_is_measured_in_ms(self):
        policy = SloPolicy(max_p99_ms=20.0)
        summary = self.make_window(50, 0, 0, 0.100)  # 100ms p99
        (breach,) = evaluate_window(policy, summary)
        assert breach.target == "p99_latency"
        assert breach.observed == pytest.approx(100.0, rel=0.10)

    def test_trap_anomaly_is_relative_to_baseline(self):
        policy = SloPolicy(trap_rate_factor=2.0)
        burning = self.make_window(10, 0, 8, 0.001)  # 0.8 traps/request
        steady = self.make_window(100, 0, 80, 0.001)  # baseline matches
        assert evaluate_window(policy, burning, steady) == []
        quiet_baseline = self.make_window(100, 0, 0, 0.001)
        (breach,) = evaluate_window(policy, burning, quiet_baseline)
        assert breach.target == "trap_rate"


class TestCheckSloCli:
    def run_gate(self, *argv):
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.abspath(repro.__file__))
        env["PYTHONPATH"] = (
            os.path.dirname(src_root) + os.pathsep + env.get("PYTHONPATH", "")
        )
        return subprocess.run(
            [sys.executable, CHECK_SLO, *argv],
            env=env,
            capture_output=True,
            text=True,
        )

    @pytest.fixture
    def artifacts(self, tmp_path):
        policy = tmp_path / "slo.json"
        policy.write_text(json.dumps({"max_p99_ms": 50, "max_error_rate": 0}))
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"requests": 10, "failures": 0, "p99_ms": 5.0}))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"requests": 10, "failures": 0, "p99_ms": 500.0}))
        return policy, good, bad

    def test_passing_report_exits_zero(self, artifacts):
        policy, good, _ = artifacts
        proc = self.run_gate("--policy", str(policy), "--report", str(good))
        assert proc.returncode == 0, proc.stderr
        assert "within SLO" in proc.stdout

    def test_p99_violation_exits_two(self, artifacts):
        policy, _, bad = artifacts
        proc = self.run_gate("--policy", str(policy), "--report", str(bad))
        assert proc.returncode == 2
        assert "SLO BREACH: p99_latency" in proc.stderr

    def test_unreadable_input_exits_three(self, artifacts):
        policy, good, _ = artifacts
        proc = self.run_gate("--policy", str(policy), "--report", "/nope/missing.json")
        assert proc.returncode == 3
        proc = self.run_gate("--policy", "/nope/slo.json", "--report", str(good))
        assert proc.returncode == 3

    def test_events_arm_the_trap_target(self, artifacts, tmp_path):
        policy_path = tmp_path / "traps.json"
        policy_path.write_text(json.dumps({"trap_rate_factor": 2.0}))
        events = tmp_path / "events.jsonl"
        events.write_text(
            "\n".join(json.dumps(make_event("trap")) for _ in range(8)) + "\n"
        )
        _, good, _ = artifacts
        proc = self.run_gate(
            "--policy", str(policy_path),
            "--report", str(good),
            "--events", str(events),
            "--baseline-trap-rate", "0.01",
        )
        assert proc.returncode == 2
        assert "trap_rate" in proc.stderr
