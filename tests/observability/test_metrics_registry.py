"""The metrics registry: snapshots, associative merging, validation."""

from __future__ import annotations

import json

import pytest

from repro.observability import (
    METRICS_SCHEMA,
    MetricsRegistry,
    get_metrics,
    histogram_percentiles,
    install_metrics,
    reset_metrics,
    validate_snapshot,
    write_metrics,
)


@pytest.fixture(autouse=True)
def _restore_registry():
    previous = get_metrics()
    yield
    install_metrics(previous)


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("cache.hits")
        registry.inc("cache.hits", 4)
        assert registry.snapshot()["counters"] == {"cache.hits": 5}

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("jobs", 4)
        registry.set_gauge("jobs", 1)
        assert registry.snapshot()["gauges"] == {"jobs": 1}

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (3.0, 1.0, 2.0):
            registry.observe("phase", value)
        stats = registry.snapshot()["histograms"]["phase"]
        assert (stats["count"], stats["sum"]) == (3, 6.0)
        assert (stats["min"], stats["max"], stats["mean"]) == (1.0, 3.0, 2.0)
        # One sketch bucket per observation here: all three values land
        # in distinct log buckets.
        assert sum(stats["buckets"].values()) == 3

    def test_histogram_percentiles_from_snapshot(self):
        registry = MetricsRegistry()
        for _ in range(99):
            registry.observe("lat", 0.010)
        registry.observe("lat", 1.0)
        # JSON round-trip: bucket keys become strings, like a real
        # --metrics-out file or a worker telemetry payload.
        stats = json.loads(json.dumps(registry.snapshot()))["histograms"]["lat"]
        rendered = histogram_percentiles(stats, scale=1e3)
        assert rendered["count"] == 100
        assert rendered["p50"] == pytest.approx(10.0, rel=0.10)
        assert rendered["p99"] <= rendered["max"] == 1000.0

    def test_histogram_percentiles_without_buckets(self):
        # Pre-sketch snapshots (older exports) have no buckets field.
        assert (
            histogram_percentiles(
                {"count": 1, "sum": 1.0, "min": 1.0, "max": 1.0, "mean": 1.0}
            )
            is None
        )

    def test_snapshot_is_detached(self):
        registry = MetricsRegistry()
        registry.inc("a")
        snapshot = registry.snapshot()
        registry.inc("a")
        assert snapshot["counters"]["a"] == 1

    def test_snapshot_validates(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 0.5)
        registry.observe("h", 1.0)
        assert validate_snapshot(registry.snapshot()) is None


class TestMerge:
    def make(self, hits, gauge, obs):
        registry = MetricsRegistry()
        registry.inc("hits", hits)
        registry.set_gauge("state", gauge)
        for value in obs:
            registry.observe("seconds", value)
        return registry

    def test_merge_adds_counters_and_histograms(self):
        left = self.make(2, 0, [1.0])
        right = self.make(3, 1, [4.0, 2.0])
        left.merge_snapshot(right.snapshot())
        merged = left.snapshot()
        assert merged["counters"]["hits"] == 5
        assert merged["gauges"]["state"] == 1  # incoming gauge wins
        stats = merged["histograms"]["seconds"]
        assert (stats["count"], stats["sum"]) == (3, 7.0)
        assert (stats["min"], stats["max"]) == (1.0, 4.0)

    def test_merge_is_associative_across_orders(self):
        parts = [self.make(1, 0, [1.0]), self.make(2, 1, [2.0]), self.make(4, 2, [0.5])]
        forward = MetricsRegistry()
        for part in parts:
            forward.merge_snapshot(part.snapshot())
        backward = MetricsRegistry()
        for part in reversed(parts):
            backward.merge_snapshot(part.snapshot())
        a, b = forward.snapshot(), backward.snapshot()
        assert a["counters"] == b["counters"]
        assert a["histograms"] == b["histograms"]

    def test_merge_into_empty_equals_source(self):
        source = self.make(7, 3, [1.0, 2.0])
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_merge_empty_snapshot_is_identity(self):
        target = self.make(2, 1, [1.0])
        before = target.snapshot()
        target.merge_snapshot(MetricsRegistry().snapshot())
        assert target.snapshot() == before

    def test_merge_empty_sections_is_identity(self):
        # A hand-built snapshot may omit sections entirely.
        target = self.make(2, 1, [1.0])
        before = target.snapshot()
        target.merge_snapshot({"schema": METRICS_SCHEMA})
        assert target.snapshot() == before

    def test_merge_histogram_only_snapshot(self):
        source = MetricsRegistry()
        source.observe("seconds", 2.0)
        source.observe("seconds", 8.0)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        merged = target.snapshot()
        assert merged["counters"] == {}
        assert merged["gauges"] == {}
        assert merged["histograms"]["seconds"]["count"] == 2

    def test_merge_pre_sketch_snapshot_without_buckets(self):
        # Snapshots written before the quantile sketch existed carry no
        # buckets field; merging them must still fold the summary.
        target = self.make(0, 0, [1.0])
        legacy = {
            "schema": METRICS_SCHEMA,
            "counters": {},
            "gauges": {},
            "histograms": {
                "seconds": {"count": 2, "sum": 10.0, "min": 4.0, "max": 6.0, "mean": 5.0}
            },
        }
        target.merge_snapshot(legacy)
        stats = target.snapshot()["histograms"]["seconds"]
        assert (stats["count"], stats["sum"]) == (3, 11.0)
        assert (stats["min"], stats["max"]) == (1.0, 6.0)
        assert validate_snapshot(target.snapshot()) is None

    def test_merge_three_way_associativity(self):
        # ((a + b) + c) == (a + (b + c)), buckets included.
        parts = [
            self.make(1, 0, [1.0, 0.25]),
            self.make(2, 1, [2.0]),
            self.make(4, 2, [0.5, 8.0]),
        ]
        a, b, c = (part.snapshot() for part in parts)
        left = MetricsRegistry()
        left.merge_snapshot(a)
        left.merge_snapshot(b)
        left.merge_snapshot(c)
        bc = MetricsRegistry()
        bc.merge_snapshot(b)
        bc.merge_snapshot(c)
        right = MetricsRegistry()
        right.merge_snapshot(a)
        right.merge_snapshot(bc.snapshot())
        assert left.snapshot() == right.snapshot()


class TestValidate:
    def valid(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.observe("h", 1.0)
        return registry.snapshot()

    def test_rejects_non_dict(self):
        assert validate_snapshot([]) is not None

    def test_rejects_wrong_schema(self):
        snapshot = self.valid()
        snapshot["schema"] = "nope"
        assert "schema" in validate_snapshot(snapshot)

    def test_rejects_negative_counter(self):
        snapshot = self.valid()
        snapshot["counters"]["c"] = -1
        assert "non-negative" in validate_snapshot(snapshot)

    def test_rejects_bool_counter(self):
        snapshot = self.valid()
        snapshot["counters"]["c"] = True
        assert validate_snapshot(snapshot) is not None

    def test_rejects_non_finite_gauge(self):
        snapshot = self.valid()
        snapshot["gauges"]["g"] = float("inf")
        assert "finite" in validate_snapshot(snapshot)

    def test_rejects_malformed_histogram(self):
        snapshot = self.valid()
        del snapshot["histograms"]["h"]["mean"]
        assert "mean" in validate_snapshot(snapshot)

    def test_rejects_min_above_max(self):
        snapshot = self.valid()
        snapshot["histograms"]["h"]["min"] = 9.0
        assert "min > max" in validate_snapshot(snapshot)

    def test_accepts_missing_buckets(self):
        snapshot = self.valid()
        del snapshot["histograms"]["h"]["buckets"]
        assert validate_snapshot(snapshot) is None

    def test_rejects_non_integer_bucket_key(self):
        snapshot = self.valid()
        snapshot["histograms"]["h"]["buckets"] = {"nope": 1}
        assert "bucket" in validate_snapshot(snapshot)

    def test_rejects_negative_bucket_count(self):
        snapshot = self.valid()
        snapshot["histograms"]["h"]["buckets"] = {"0": -1}
        assert "bucket" in validate_snapshot(snapshot)


class TestGlobalRegistry:
    def test_reset_installs_fresh(self):
        get_metrics().inc("stale")
        fresh = reset_metrics()
        assert get_metrics() is fresh
        assert fresh.snapshot()["counters"] == {}

    def test_write_metrics_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("a", 2)
        path = tmp_path / "metrics.json"
        write_metrics(str(path), registry.snapshot())
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == METRICS_SCHEMA
        assert loaded["counters"] == {"a": 2}
        assert validate_snapshot(loaded) is None
