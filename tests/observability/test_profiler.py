"""The execution profiler: attribution math and the CPU integration."""

from __future__ import annotations

import pytest

from repro.core.framework import protect
from repro.frontend import compile_source
from repro.hardware import CPU
from repro.observability import PROFILE_SCHEMA, ExecutionProfiler, format_report

SOURCE = """
int helper(int x) {
    int total = 0;
    for (int i = 0; i < x; i = i + 1) { total = total + i; }
    return total;
}

int main() {
    int acc = 0;
    for (int i = 0; i < 20; i = i + 1) { acc = acc + helper(i); }
    return acc % 97;
}
"""


class TestAttributionMath:
    def test_self_excludes_children_inclusive_includes_them(self):
        profiler = ExecutionProfiler()
        profiler.enter("main", 0, 0.0)
        profiler.enter("helper", 10, 5.0)
        profiler.exit(30, 20.0)  # helper: 20 steps, 15 cycles inclusive
        profiler.exit(40, 30.0)  # main: 40 steps, 30 cycles inclusive
        helper = profiler.functions["helper"]
        main = profiler.functions["main"]
        assert helper == [1, 20, 15.0, 20, 15.0]  # leaf: self == inclusive
        assert main[1:] == [20, 15.0, 40, 30.0]  # self = inclusive - child

    def test_self_totals_add_up_across_calls(self):
        profiler = ExecutionProfiler()
        profiler.enter("main", 0, 0.0)
        for start in (10, 40):
            profiler.enter("leaf", start, float(start))
            profiler.exit(start + 20, float(start + 20))
        profiler.exit(100, 100.0)
        leaf = profiler.functions["leaf"]
        main = profiler.functions["main"]
        assert leaf[0] == 2
        assert leaf[1] + main[1] == 100  # self steps partition the run

    def test_block_accumulates(self):
        profiler = ExecutionProfiler()
        profiler.block("f:entry", 3, 2.0)
        profiler.block("f:entry", 5, 4.0)
        assert profiler.blocks["f:entry"] == [2, 8, 6.0]

    def test_report_sorts_by_self_cycles_and_caps_top(self):
        profiler = ExecutionProfiler()
        for index in range(5):
            profiler.enter(f"f{index}", 0, 0.0)
            profiler.exit(1, float(index))
        report = profiler.report(top=2)
        assert report["schema"] == PROFILE_SCHEMA
        assert [entry["name"] for entry in report["functions"]] == ["f4", "f3"]

    def test_trap_recorded(self):
        profiler = ExecutionProfiler()
        profiler.trap("pac_fault", "auth failed at main")
        report = profiler.report()
        assert report["traps"] == [
            {"status": "pac_fault", "detail": "auth failed at main"}
        ]
        assert any("pac_fault" in line for line in format_report(report))


@pytest.fixture(scope="module")
def protected_module():
    return protect(compile_source(SOURCE, name="prof"), scheme="pythia").module


class TestCPUIntegration:
    @pytest.mark.parametrize("interpreter", ["reference", "decoded", "block"])
    def test_self_steps_partition_the_run(self, protected_module, interpreter):
        profiler = ExecutionProfiler()
        result = CPU(
            protected_module, interpreter=interpreter, profiler=profiler
        ).run()
        assert result.ok
        assert sum(
            record[1] for record in profiler.functions.values()
        ) == result.steps
        assert profiler.functions["helper"][0] == 20  # dynamic call count

    def test_block_attribution_only_under_block_tier(self, protected_module):
        for interpreter, expect_blocks in (("decoded", False), ("block", True)):
            profiler = ExecutionProfiler()
            CPU(
                protected_module, interpreter=interpreter, profiler=profiler
            ).run()
            assert bool(profiler.blocks) == expect_blocks
        assert all(":" in label for label in profiler.blocks)

    def test_block_steps_match_run_total(self, protected_module):
        profiler = ExecutionProfiler()
        result = CPU(
            protected_module, interpreter="block", profiler=profiler
        ).run()
        # Blocks containing calls attribute their subtree (call-inclusive),
        # so the per-block sum can exceed the total but never undershoot.
        assert sum(
            record[1] for record in profiler.blocks.values()
        ) >= result.steps

    def test_report_totals_come_from_the_result(self, protected_module):
        profiler = ExecutionProfiler()
        result = CPU(
            protected_module, interpreter="block", profiler=profiler
        ).run()
        report = profiler.report(result, top=5)
        assert report["totals"]["steps"] == result.steps
        assert report["totals"]["interpreter"] == "block"
        assert len(report["opcodes"]) <= 5
        lines = format_report(report)
        assert any(line.startswith("run: status=ok") for line in lines)
        assert any("hot functions" in line for line in lines)
        assert any("hot blocks" in line for line in lines)
