"""Cross-process correlation: events, flows, enriched stats, top, audit.

The acceptance loop for the security-event pipeline: a request enters
the daemon, a worker's defense fires, and the resulting trap event +
trace spans all carry the same correlation id -- so one events file,
one Chrome trace, and one loadgen report can be joined after the fact.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.observability import read_events
from repro.serve import ServeClient

from .conftest import SRC_ROOT, TINY_SOURCE


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_trap_events_carry_request_and_correlation_ids(daemon):
    socket_path, _ = daemon()
    with ServeClient(socket_path=socket_path) as client:
        attack = client.request("attack", scenario="privilege_escalation", scheme="pythia")
        assert attack["status"] == "ok"
        assert attack["result"]["outcome"] in ("blocked", "trapped", "detected")
        response = client.request("events")
    assert response["status"] == "ok"
    result = response["result"]
    assert result["schema"] == "repro-events-v1"
    traps = [e for e in result["events"] if e["type"] == "trap"]
    assert traps, "the blocked attack should have produced a trap event"
    trap = traps[-1]
    # the caller's id and the daemon's rid both survive the hop into
    # the worker and back
    assert trap["request_id"] == attack["id"]
    assert trap["rid"] is not None
    assert trap["scheme"] == "pythia"
    assert trap["module_digest"]
    assert trap["pid"] != os.getpid()


def test_events_op_respects_limit(daemon):
    socket_path, _ = daemon()
    with ServeClient(socket_path=socket_path) as client:
        for _ in range(3):
            client.request("attack", scenario="privilege_escalation", scheme="pythia")
        unlimited = client.request("events")["result"]
        limited = client.request("events", limit=1)["result"]
    assert unlimited["emitted"] >= 3
    assert len(limited["events"]) == 1
    assert limited["events"][0] == unlimited["events"][-1]


def test_stats_exposes_window_and_latency_percentiles(daemon):
    socket_path, _ = daemon()
    with ServeClient(socket_path=socket_path) as client:
        for _ in range(3):
            client.request("run", source=TINY_SOURCE, scheme="pythia")
        client.request("attack", scenario="privilege_escalation", scheme="pythia")
        stats = client.request("stats")["result"]
    window = stats["window"]
    assert window["counters"]["requests"] >= 4
    assert window["counters"]["traps"] >= 1
    assert window["counters"]["traps.pythia"] >= 1
    # percentiles come from the shared metrics sketch, one row per op
    run_row = stats["latency_ms"]["run"]
    assert run_row["count"] >= 3
    assert 0 < run_row["p50"] <= run_row["p90"] <= run_row["p99"] <= run_row["max"]
    assert stats["events"]["emitted"] >= 1
    assert stats["slo"] is None


def test_rid_joins_frontend_and_worker_spans_in_one_trace(daemon, tmp_path):
    trace_path = str(tmp_path / "trace.json")
    events_path = str(tmp_path / "events.jsonl")
    socket_path, proc = daemon(
        "--trace-out", trace_path, "--events-out", events_path
    )
    with ServeClient(socket_path=socket_path) as client:
        attack = client.request("attack", scenario="privilege_escalation", scheme="pythia")
        assert attack["status"] == "ok"
    proc.terminate()
    proc.wait(timeout=30)

    with open(trace_path, "r", encoding="utf-8") as handle:
        trace = json.load(handle)
    events = trace["traceEvents"]
    starts = {e["id"]: e for e in events if e.get("ph") == "s"}
    finishes = {e["id"]: e for e in events if e.get("ph") == "f"}
    joined = set(starts) & set(finishes)
    assert joined, "at least one flow must start and finish"
    rid = sorted(joined)[0]
    # the start is the front-end's, the finish the worker's
    assert starts[rid]["pid"] != finishes[rid]["pid"]
    span_names = {e.get("name") for e in events if e.get("ph") == "X"}
    assert "serve:attack" in span_names

    # the exported events file validates and its traps carry that rid
    records = read_events(events_path)
    traps = [e for e in records if e["type"] == "trap"]
    assert traps and traps[-1]["rid"] in joined


def test_top_once_renders_a_dashboard_frame(daemon):
    socket_path, _ = daemon()
    with ServeClient(socket_path=socket_path) as client:
        client.request("run", source=TINY_SOURCE, scheme="pythia")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "top", "--socket", socket_path, "--once"],
        env=_cli_env(),
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stderr
    assert f"repro serve @ {socket_path}" in proc.stdout
    assert "req/s" in proc.stdout


def test_audit_cli_summarizes_an_exported_events_file(daemon, tmp_path):
    events_path = str(tmp_path / "events.jsonl")
    socket_path, proc = daemon("--events-out", events_path)
    with ServeClient(socket_path=socket_path) as client:
        client.request("attack", scenario="privilege_escalation", scheme="pythia")
        client.request("attack", scenario="privilege_escalation", scheme="dfi")
    proc.terminate()
    proc.wait(timeout=30)

    report_path = str(tmp_path / "audit.json")
    result = subprocess.run(
        [sys.executable, "-m", "repro", "audit", events_path, "--json-out", report_path],
        env=_cli_env(),
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stderr
    assert "traps:" in result.stdout
    with open(report_path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    assert report["traps"]["total"] >= 2
    assert report["traps"]["correlated"] == report["traps"]["total"]
    assert set(report["traps"]["by_scheme"]) >= {"pythia", "dfi"}


def test_audit_cli_rejects_a_rotten_file(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    result = subprocess.run(
        [sys.executable, "-m", "repro", "audit", str(bad)],
        env=_cli_env(),
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 3
    assert "bad.jsonl:1" in result.stderr
