"""Unit tests for the serve wire protocol helpers."""

from __future__ import annotations

import json

import pytest

from repro.core.framework import ProtectionError
from repro.frontend.sema import SemaError
from repro.hardware.errors import ReproError, SecurityTrap
from repro.ir.verifier import VerificationError
from repro.serve.protocol import (
    CODE_BAD_REQUEST,
    CODE_FRONTEND,
    CODE_INTERNAL,
    CODE_VERIFY,
    OPS,
    classify_exception,
    decode_line,
    encode,
    error_response,
    ok_response,
    request_key,
    shard_digest,
    validate_request,
    with_id,
)


def test_encode_decode_roundtrip():
    message = {"id": 7, "op": "run", "source": "int main() {}", "inputs": ["a"]}
    line = encode(message)
    assert line.endswith(b"\n")
    assert b"\n" not in line[:-1]
    assert decode_line(line) == message


def test_decode_rejects_non_objects():
    with pytest.raises(ValueError):
        decode_line(b"[1, 2, 3]\n")
    with pytest.raises(ValueError):
        decode_line(b"{truncated\n")


def test_validate_request_taxonomy():
    assert validate_request({"op": "ping"}) is None
    assert validate_request({"op": "run", "source": "x"}) is None
    assert "string 'op'" in validate_request({"id": 1})
    assert "unknown op" in validate_request({"op": "explode"})
    assert "requires" in validate_request({"op": "run"})
    assert "requires" in validate_request({"op": "attack"})
    assert "list of strings" in validate_request(
        {"op": "run", "source": "x", "inputs": [1]}
    )
    for op in OPS:
        # every op has a validation rule registered
        assert validate_request({"op": op}) is None or "requires" in validate_request(
            {"op": op}
        )


def test_response_envelopes():
    ok = ok_response(3, {"pong": True})
    assert ok == {"id": 3, "status": "ok", "result": {"pong": True}}
    err = error_response(4, CODE_BAD_REQUEST, "BadRequest", "nope")
    assert err["status"] == "error"
    assert err["code"] == CODE_BAD_REQUEST
    assert err["error"] == {"type": "BadRequest", "message": "nope"}


def test_with_id_readdresses_a_copy():
    original = ok_response(1, {"value": 42})
    follower = with_id(original, 2)
    assert follower["id"] == 2
    assert follower["result"] is original["result"]
    assert original["id"] == 1  # leader envelope untouched
    assert with_id(original, 1) is original


def test_request_key_ignores_id_only():
    left = {"id": 1, "op": "compile", "source": "x", "scheme": "dfi"}
    right = {"id": "c9-44", "op": "compile", "source": "x", "scheme": "dfi"}
    assert request_key(left) == request_key(right)
    other = dict(left, scheme="pythia")
    assert request_key(left) != request_key(other)
    # stable under field reordering
    assert request_key(dict(reversed(list(left.items())))) == request_key(left)
    assert json.loads(request_key(left)).get("id") is None


def test_shard_digest_routes_by_content():
    run = {"op": "run", "source": "int main() {}", "scheme": "pythia"}
    compile_ = {"op": "compile", "source": "int main() {}", "scheme": "dfi"}
    # same source -> same shard regardless of op and scheme
    assert shard_digest(run) == shard_digest(compile_)
    assert shard_digest(dict(run, source="other")) != shard_digest(run)
    attack = {"op": "attack", "scenario": "heap_overflow"}
    assert shard_digest(attack) == shard_digest(dict(attack, scheme="dfi"))
    assert shard_digest(attack) != shard_digest(
        {"op": "attack", "scenario": "pac_reuse"}
    )


def test_classify_exception_layers():
    assert classify_exception(SemaError("undeclared variable")) == (
        CODE_FRONTEND,
        "SemaError",
    )
    assert classify_exception(VerificationError("dominance")) == (
        CODE_VERIFY,
        "VerificationError",
    )
    assert classify_exception(ProtectionError("no pass")) == (
        CODE_VERIFY,
        "ProtectionError",
    )
    code, name = classify_exception(SecurityTrap("pac auth failed"))
    assert name == "SecurityTrap"
    assert code == SecurityTrap.exit_code
    assert classify_exception(KeyError("scenario")) == (
        CODE_BAD_REQUEST,
        "KeyError",
    )
    assert classify_exception(ValueError("bad scheme")) == (
        CODE_BAD_REQUEST,
        "ValueError",
    )
    assert classify_exception(RuntimeError("boom")) == (
        CODE_INTERNAL,
        "RuntimeError",
    )


def test_repro_error_carries_its_own_exit_code():
    class CustomError(ReproError):
        exit_code = 2

    assert classify_exception(CustomError("contract")) == (2, "CustomError")
