"""Single-flight dedup: N identical in-flight compiles, one compilation.

The guarantee is observable three ways and this module checks all of
them: every caller gets a successful, byte-identical response; the
daemon's merged metrics show exactly one cold compile (one
``compile.phase.frontend`` observation) and N-1 coalesced followers;
and the merged trace contains exactly one frontend span.
"""

from __future__ import annotations

import json
import threading

from repro.serve import ServeClient

from .conftest import TINY_SOURCE

CONCURRENT = 6


def test_concurrent_identical_compiles_coalesce(daemon, tmp_path):
    trace_out = str(tmp_path / "trace.json")
    metrics_out = str(tmp_path / "metrics.json")
    socket_path, proc = daemon(
        "--trace-out", trace_out, "--metrics-out", metrics_out
    )

    responses = []
    lock = threading.Lock()
    barrier = threading.Barrier(CONCURRENT)

    def fire(index):
        with ServeClient(socket_path=socket_path) as client:
            barrier.wait(timeout=30)
            response = client.request(
                "compile", source=TINY_SOURCE, scheme="pythia", seed=7
            )
            with lock:
                responses.append(response)

    threads = [
        threading.Thread(target=fire, args=(index,)) for index in range(CONCURRENT)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)

    # 1. every caller succeeded with a byte-identical body
    assert len(responses) == CONCURRENT
    assert all(response["status"] == "ok" for response in responses)
    digests = {response["result"]["module_digest"] for response in responses}
    assert len(digests) == 1
    bodies = {
        json.dumps(
            {k: v for k, v in response["result"].items() if k != "timings"},
            sort_keys=True,
        )
        for response in responses
    }
    assert len(bodies) == 1

    with ServeClient(socket_path=socket_path) as client:
        stats = client.request("stats")["result"]
        client.request("shutdown")
    proc.wait(timeout=30)
    assert proc.returncode == 0
    assert stats["dedup_coalesced"] == CONCURRENT - 1

    # 2. the merged metrics recorded exactly one compilation
    with open(metrics_out, "r", encoding="utf-8") as handle:
        metrics = json.load(handle)
    counters = metrics["counters"]
    histograms = metrics["histograms"]
    assert counters["serve.requests.compile"] == CONCURRENT
    assert counters["serve.dedup.coalesced"] == CONCURRENT - 1
    assert histograms["compile.phase.frontend"]["count"] == 1
    assert histograms["compile.phase.mem2reg"]["count"] == 1
    assert counters["serve.registry.module_misses"] == 1
    assert counters.get("serve.registry.module_hits", 0) == 0

    # 3. the merged trace carries exactly one frontend span set
    with open(trace_out, "r", encoding="utf-8") as handle:
        trace = json.load(handle)
    events = trace["traceEvents"] if isinstance(trace, dict) else trace
    frontend_spans = [
        event
        for event in events
        if event.get("name") == "frontend" and event.get("ph") == "X"
    ]
    assert len(frontend_spans) == 1


def test_distinct_requests_do_not_coalesce(daemon):
    socket_path, _ = daemon()
    with ServeClient(socket_path=socket_path) as client:
        client.request("compile", source=TINY_SOURCE, scheme="pythia")
        client.request("compile", source=TINY_SOURCE, scheme="dfi")
        stats = client.request("stats")["result"]
    # sequential and/or distinct-keyed requests never count as coalesced
    assert stats["dedup_coalesced"] == 0
