"""End-to-end daemon tests: one subprocess, every op, the error taxonomy."""

from __future__ import annotations

import json

import pytest

from repro.serve import ServeClient

from .conftest import TINY_SOURCE


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    """One shared daemon + connected client for this module's tests.

    The request-level tests are read-only against daemon state (no
    shutdown, no crash ops), so sharing one boot keeps the module fast.
    """
    import os
    import subprocess
    import sys

    import repro
    from repro.serve import wait_for_server

    tmp_path = tmp_path_factory.mktemp("serve")
    socket_path = str(tmp_path / "serve.sock")
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            socket_path,
            "--workers",
            "2",
            "--cache-dir",
            str(tmp_path / "cache"),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    wait_for_server(socket_path=socket_path, deadline_s=30)
    client = ServeClient(socket_path=socket_path).connect()
    yield client
    client.close()
    proc.terminate()
    proc.wait(timeout=15)


def test_ping_reports_protocol(live):
    response = live.request("ping")
    assert response["status"] == "ok"
    assert response["result"] == {"pong": True, "protocol": "repro-serve-v1"}


def test_run_executes_and_reports_architecture(live):
    response = live.request(
        "run", source=TINY_SOURCE, scheme="pythia", interpreter="block"
    )
    assert response["status"] == "ok"
    result = response["result"]
    assert result["ok"] and result["status"] == "ok"
    assert result["output"] == "acc=877\n"
    assert result["cycles"] > 0 and result["steps"] > 0
    assert result["interpreter"] == "block"


def test_warm_compile_is_byte_identical_to_cold(live):
    source = TINY_SOURCE.replace("i * 3", "i * 5")
    cold = live.request("compile", source=source, scheme="dfi", emit_module=True)
    warm = live.request("compile", source=source, scheme="dfi", emit_module=True)
    assert cold["status"] == warm["status"] == "ok"
    assert cold["result"]["registry"] == "cold"
    assert warm["result"]["registry"] == "warm"
    assert warm["result"]["module"] == cold["result"]["module"]
    assert warm["result"]["module_digest"] == cold["result"]["module_digest"]
    # the warm response body differs from cold only in the warmth marker
    trimmed = {k: v for k, v in cold["result"].items() if k not in ("registry", "timings")}
    trimmed_warm = {
        k: v for k, v in warm["result"].items() if k not in ("registry", "timings")
    }
    assert trimmed == trimmed_warm


def test_run_responses_are_deterministic_across_temperature(live):
    source = TINY_SOURCE.replace("i * 3", "i * 7")
    cold = live.request("run", source=source, scheme="pythia", seed=11)
    warm = live.request("run", source=source, scheme="pythia", seed=11)
    assert cold["result"] == warm["result"] or {
        k: v for k, v in cold["result"].items() if k != "registry"
    } == {k: v for k, v in warm["result"].items() if k != "registry"}


def test_attack_op_replays_scenarios(live):
    blocked = live.request("attack", scenario="privilege_escalation", scheme="pythia")
    assert blocked["status"] == "ok"
    assert blocked["result"]["outcome"] in ("blocked", "trapped", "detected")
    landed = live.request("attack", scenario="privilege_escalation", scheme="vanilla")
    assert landed["status"] == "ok"
    assert landed["result"]["outcome"] == "success"


def test_profile_op_returns_report(live):
    response = live.request("profile", source=TINY_SOURCE, scheme="vanilla")
    assert response["status"] == "ok"
    assert "block_counts" in response["result"]["report"]


def test_stats_op_counts_requests(live):
    before = live.request("stats")["result"]
    live.request("ping")
    after = live.request("stats")["result"]
    assert after["requests"] >= before["requests"] + 2
    assert after["workers"] == 2


# -- the error taxonomy over the wire ------------------------------------------


def test_frontend_rejection_is_code_4(live):
    response = live.request("run", source="int main( {", scheme="pythia")
    assert response["status"] == "error"
    assert response["code"] == 4
    assert response["error"]["type"] in ("ParseError", "LexError", "SemaError")


def test_unknown_scheme_is_code_3(live):
    response = live.request("run", source=TINY_SOURCE, scheme="mte")
    assert response["status"] == "error"
    assert response["code"] == 3
    assert "unknown scheme" in response["error"]["message"]


def test_unknown_scenario_is_code_3(live):
    response = live.request("attack", scenario="does_not_exist")
    assert response["status"] == "error"
    assert response["code"] == 3


def test_unknown_op_is_code_3(live):
    response = live.request("explode")
    assert response["status"] == "error"
    assert response["code"] == 3
    assert "unknown op" in response["error"]["message"]


def test_missing_field_is_code_3(live):
    response = live.request("run")
    assert response["status"] == "error"
    assert response["code"] == 3
    assert "requires" in response["error"]["message"]


def test_malformed_line_is_answered_not_fatal(live):
    response = live.send_raw_line(b"this is not json\n")
    assert response["status"] == "error"
    assert response["code"] == 3
    assert response["id"] is None
    # the connection survives the garbage line
    assert live.request("ping")["status"] == "ok"


def test_debug_crash_is_rejected_without_debug_ops(live):
    response = live.request("_debug_crash", source=TINY_SOURCE)
    assert response["status"] == "error"
    assert response["code"] == 3
