"""Shared fixtures for the serve-daemon tests.

Most tests here exercise the real thing: a ``python -m repro serve``
subprocess on a per-test Unix socket.  The ``daemon`` fixture starts
one with test-friendly defaults and guarantees teardown even when the
test dies mid-request.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro
from repro.serve import wait_for_server

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: Small MiniC program used across the daemon tests.
TINY_SOURCE = """
int main() {
  int acc = 0;
  for (int i = 0; i < 200; i = i + 1) { acc = acc + i * 3; }
  printf("acc=%d\\n", acc % 997);
  return 0;
}
"""


@pytest.fixture
def daemon(tmp_path):
    """Factory: ``daemon(*extra_args)`` -> ``(socket_path, Popen)``.

    Each call boots a fresh daemon on its own socket under ``tmp_path``
    and waits for it to answer ``ping``.  All daemons are torn down at
    test exit, forcibly if they ignore SIGTERM.
    """
    procs = []

    def start(*extra_args, workers=2, ready_deadline_s=30.0):
        socket_path = str(tmp_path / f"serve{len(procs)}.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--socket",
                socket_path,
                "--workers",
                str(workers),
                "--no-cache",
                *extra_args,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        procs.append(proc)
        wait_for_server(socket_path=socket_path, deadline_s=ready_deadline_s)
        return socket_path, proc

    yield start

    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)
        if proc.stdout is not None:
            proc.stdout.close()
        if proc.stderr is not None:
            proc.stderr.close()
