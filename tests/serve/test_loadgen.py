"""The request-mix builder and the load generator against a live daemon."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.serve import run_load
from repro.serve.loadgen import percentile
from repro.workloads.nginx import DEFAULT_MIX, build_request_mix, parse_mix

from .conftest import SRC_ROOT


# -- the deterministic mix -----------------------------------------------------


def test_mix_is_deterministic():
    left = build_request_mix(40, seed=7, variants=2)
    right = build_request_mix(40, seed=7, variants=2)
    assert left == right
    assert left != build_request_mix(40, seed=8, variants=2)


def test_mix_respects_weights():
    only_runs = build_request_mix(30, mix={"run": 1}, variants=1)
    assert {request["op"] for request in only_runs} == {"run"}
    no_attacks = build_request_mix(
        60, mix={"run": 1, "compile": 1}, variants=2
    )
    assert "attack" not in {request["op"] for request in no_attacks}


def test_mix_bodies_are_complete_protocol_requests():
    from repro.serve.protocol import validate_request

    for request in build_request_mix(50, variants=2):
        assert validate_request(request) is None
        assert "seed" in request
        if request["op"] != "attack":
            assert request["source"].startswith("//") or request["source"]


def test_parse_mix():
    assert parse_mix("run=6,compile=3") == {"run": 6, "compile": 3}
    assert parse_mix(" run=1 , profile=2 ") == {"run": 1, "profile": 2}
    with pytest.raises(ValueError):
        parse_mix("run")
    with pytest.raises(ValueError):
        parse_mix("explode=3")
    with pytest.raises(ValueError):
        parse_mix("run=zero")
    with pytest.raises(ValueError):
        parse_mix("run=0,compile=0")
    with pytest.raises(ValueError):
        parse_mix("run=-1")


def test_default_mix_is_execution_heavy():
    assert DEFAULT_MIX["run"] == max(DEFAULT_MIX.values())


def test_percentile_interpolates():
    assert percentile([], 50) == 0.0
    assert percentile([5.0], 99) == 5.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
    assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0
    assert percentile([4.0, 1.0, 3.0, 2.0], 0) == 1.0  # sorts internally


# -- live load -----------------------------------------------------------------


def test_run_load_drives_a_daemon(daemon):
    socket_path, _ = daemon()
    mix = build_request_mix(16, seed=3, variants=1, mix={"run": 2, "compile": 1})
    report = run_load(mix, concurrency=2, socket_path=socket_path)
    assert report.requests == 16
    assert report.failures == 0
    assert report.concurrency == 2
    assert report.throughput_rps > 0
    assert report.p99_ms() >= report.p50_ms() > 0
    payload = report.to_dict()
    assert set(payload["per_op"]) == {"run", "compile"}
    assert sum(op["requests"] for op in payload["per_op"].values()) == 16


def test_loadgen_cli_roundtrip(daemon, tmp_path):
    socket_path, _ = daemon()
    report_path = str(tmp_path / "report.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "loadgen",
            "--socket",
            socket_path,
            "--requests",
            "12",
            "--concurrency",
            "2",
            "--variants",
            "1",
            "--mix",
            "run=2,compile=1",
            "--report-out",
            report_path,
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert "12 requests, 0 failed" in completed.stdout

    import json

    with open(report_path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    assert report["requests"] == 12
    assert report["failures"] == 0
