"""The warm module registry: reuse, byte-identity, eviction, disk cache."""

from __future__ import annotations

import pytest

from repro.core.framework import protect
from repro.frontend import compile_source
from repro.hardware.cpu import CPU
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.serve.registry import WarmRegistry, source_digest
from repro.transforms.mem2reg import Mem2Reg

SOURCE = """
int main() {
  int acc = 0;
  for (int i = 0; i < 50; i = i + 1) { acc = acc + i; }
  printf("acc=%d\\n", acc);
  return 0;
}
"""

OTHER = SOURCE.replace("i < 50", "i < 60")


def cold_printed(source, scheme):
    """What a single-shot CLI compile would print for this variant."""
    module = compile_source(source, name="module")
    verify_module(module)
    Mem2Reg().run(module)
    verify_module(module)
    return print_module(protect(module, scheme=scheme).module)


def test_warm_variant_is_byte_identical_to_cold_compile():
    registry = WarmRegistry(capacity=4)
    _, cold_text, cold_digest, warm = registry.printed_module(
        SOURCE, "module", "pythia"
    )
    assert not warm
    _, warm_text, warm_digest, warm_again = registry.printed_module(
        SOURCE, "module", "pythia"
    )
    assert warm_again
    assert warm_text == cold_text
    assert warm_digest == cold_digest
    assert cold_text == cold_printed(SOURCE, "pythia")


def test_second_scheme_reuses_prepared_module_and_analysis():
    registry = WarmRegistry(capacity=4)
    registry.protection(SOURCE, scheme="pythia")
    assert registry.stats.module_misses == 1
    first_report = registry._entries[source_digest(SOURCE)].report
    assert first_report is not None
    registry.protection(SOURCE, scheme="dfi")
    # same module entry, same shared report object: no re-prepare, no re-analysis
    assert registry.stats.module_misses == 1
    assert registry.stats.module_hits == 1
    assert registry._entries[source_digest(SOURCE)].report is first_report
    # but each scheme is its own protection variant
    assert registry.stats.protection_misses == 2


def test_scheme_variants_execute_like_their_cold_equivalents():
    registry = WarmRegistry(capacity=4)
    for scheme in ("vanilla", "pythia", "dfi"):
        protection, _ = registry.protection(SOURCE, scheme=scheme)
        result = CPU(protection.module, seed=7).run()
        assert result.ok, (scheme, result.status)
        assert result.output == b"acc=1225\n", scheme


def test_lru_eviction_bounds_distinct_modules():
    registry = WarmRegistry(capacity=1)
    registry.protection(SOURCE, scheme="vanilla")
    registry.protection(OTHER, scheme="vanilla")
    assert len(registry) == 1
    assert registry.stats.evictions == 1
    # the evicted module recompiles on return
    registry.protection(SOURCE, scheme="vanilla")
    assert registry.stats.module_misses == 3


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        WarmRegistry(capacity=0)


def test_disk_cache_feeds_a_fresh_registry(tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = WarmRegistry(capacity=4, cache_dir=cache_dir)
    _, first_text, _, _ = first.printed_module(SOURCE, "module", "pythia")
    assert first._disk.stats.stores == 1

    # A restarted worker (fresh registry, same cache dir) skips the
    # protection pipeline: the variant loads from disk.
    second = WarmRegistry(capacity=4, cache_dir=cache_dir)
    _, second_text, _, warm = second.printed_module(SOURCE, "module", "pythia")
    assert not warm  # not warm in-process...
    assert second._disk.stats.hits == 1  # ...but served from disk
    assert second_text == first_text


def test_corrupt_disk_entry_recompiles_silently(tmp_path):
    import json
    import os

    cache_dir = str(tmp_path / "cache")
    first = WarmRegistry(capacity=4, cache_dir=cache_dir)
    _, first_text, _, _ = first.printed_module(SOURCE, "module", "pythia")

    (path,) = [
        os.path.join(dirpath, name)
        for dirpath, _, names in os.walk(cache_dir)
        for name in names
        if name.endswith(".json")
    ]
    with open(path, "r", encoding="utf-8") as handle:
        blob = json.load(handle)
    blob["payload"]["module"] = "tampered"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(blob, handle)

    second = WarmRegistry(capacity=4, cache_dir=cache_dir)
    _, second_text, _, _ = second.printed_module(SOURCE, "module", "pythia")
    assert second_text == first_text  # recompiled, not trusted
    assert second._disk.stats.corrupt == 1
