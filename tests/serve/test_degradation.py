"""Graceful degradation: worker crashes, timeouts, endpoint conflicts.

A worker dying or stalling must cost its caller one structured error
response (internal code 1) and everyone else nothing: the pool
respawns the shard cold and keeps serving.
"""

from __future__ import annotations

import os
import subprocess
import sys

import repro
from repro.serve import ServeClient

from .conftest import SRC_ROOT, TINY_SOURCE

#: Enough iterations that the reference interpreter cannot finish
#: before a 1-second worker timeout.
SLOW_SOURCE = """
int main() {
  int acc = 0;
  for (int i = 0; i < 100000000; i = i + 1) { acc = acc + i; }
  return acc;
}
"""


def test_worker_crash_is_contained(daemon):
    socket_path, _ = daemon("--debug-ops")
    with ServeClient(socket_path=socket_path) as client:
        crashed = client.request("_debug_crash", source=TINY_SOURCE, exit_code=13)
        assert crashed["status"] == "error"
        assert crashed["code"] == 1
        assert crashed["error"]["type"] == "WorkerCrash"
        # the shard respawned; the next request compiles cold and succeeds
        follow_up = client.request("run", source=TINY_SOURCE, scheme="pythia")
        assert follow_up["status"] == "ok"
        assert follow_up["result"]["registry"] == "cold"
        stats = client.request("stats")["result"]
        assert stats["worker_restarts"] == 1


def test_worker_timeout_is_contained(daemon):
    socket_path, _ = daemon("--timeout", "1")
    with ServeClient(socket_path=socket_path) as client:
        stalled = client.request(
            "run", source=SLOW_SOURCE, scheme="vanilla", interpreter="reference"
        )
        assert stalled["status"] == "error"
        assert stalled["code"] == 1
        assert stalled["error"]["type"] == "WorkerTimeout"
        follow_up = client.request("run", source=TINY_SOURCE, scheme="pythia")
        assert follow_up["status"] == "ok"
        stats = client.request("stats")["result"]
        assert stats["worker_restarts"] == 1


def test_crash_op_needs_debug_flag(daemon):
    socket_path, _ = daemon()
    with ServeClient(socket_path=socket_path) as client:
        response = client.request("_debug_crash", source=TINY_SOURCE)
        assert response["status"] == "error"
        assert response["code"] == 3
        assert client.request("stats")["result"]["worker_restarts"] == 0


def test_socket_in_use_exits_3_with_one_line(daemon, tmp_path):
    socket_path, _ = daemon()
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    second = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            socket_path,
            "--workers",
            "1",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert second.returncode == 3
    diagnostic = [line for line in second.stderr.splitlines() if "error" in line]
    assert len(diagnostic) == 1
    assert "already in use" in diagnostic[0]


def test_stale_socket_is_reclaimed(tmp_path, daemon):
    socket_path = str(tmp_path / "stale.sock")
    import socket as socket_module

    listener = socket_module.socket(socket_module.AF_UNIX)
    listener.bind(socket_path)
    listener.close()  # leaves the filesystem entry with nobody listening

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            socket_path,
            "--workers",
            "1",
            "--no-cache",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        from repro.serve import wait_for_server

        wait_for_server(socket_path=socket_path, deadline_s=30)
        with ServeClient(socket_path=socket_path) as client:
            assert client.request("ping")["status"] == "ok"
    finally:
        proc.terminate()
        proc.wait(timeout=15)
