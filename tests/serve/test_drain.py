"""Clean shutdown: SIGTERM and the shutdown op both drain gracefully."""

from __future__ import annotations

import os
import signal
import subprocess

from repro.serve import ServeClient, ServeClientError

from .conftest import TINY_SOURCE


def test_sigterm_drains_and_exits_zero(daemon):
    socket_path, proc = daemon()
    with ServeClient(socket_path=socket_path) as client:
        assert client.request("run", source=TINY_SOURCE, scheme="pythia")[
            "status"
        ] == "ok"
    proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=30)
    assert proc.returncode == 0
    assert not os.path.exists(socket_path)  # socket unlinked on exit
    stderr = proc.stderr.read().decode()
    assert "drained" in stderr
    assert "Traceback" not in stderr


def test_shutdown_op_drains_and_exits_zero(daemon):
    socket_path, proc = daemon()
    with ServeClient(socket_path=socket_path) as client:
        response = client.request("shutdown")
        assert response["status"] == "ok"
        assert response["result"] == {"stopping": True}
    proc.wait(timeout=30)
    assert proc.returncode == 0
    assert not os.path.exists(socket_path)


def test_draining_daemon_rejects_new_work(daemon):
    socket_path, proc = daemon()
    with ServeClient(socket_path=socket_path) as client:
        client.request("shutdown")
        # The connection is still open; worker ops are now refused with
        # a structured error rather than hanging or crashing (the
        # daemon may also have finished closing, which surfaces as a
        # client-side transport error -- both are clean outcomes).
        try:
            response = client.request("run", source=TINY_SOURCE, scheme="pythia")
        except ServeClientError:
            pass
        else:
            assert response["status"] == "error"
            assert response["code"] == 3
    proc.wait(timeout=30)
    assert proc.returncode == 0


def test_sigint_also_drains(daemon):
    socket_path, proc = daemon()
    proc.send_signal(signal.SIGINT)
    proc.wait(timeout=30)
    assert proc.returncode == 0
    assert not os.path.exists(socket_path)
