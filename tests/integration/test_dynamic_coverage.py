"""Dynamic detection coverage over the generated benchmark suite.

Fig. 7(b) is a *static* claim (which branches each technique can
protect).  These tests validate it *dynamically*: inject real overflow
payloads into the generated workloads' input channels and check that
Pythia's canaries actually fire, on every benchmark, while the same
payloads bend the unprotected programs or corrupt their state.
"""

import pytest

from repro.attacks import AttackController
from repro.core import protect
from repro.hardware import CPU
from repro.workloads import generate_program, get_profile

#: benchmarks with gets/fgets-style handler channels to attack
TARGETS = ["502.gcc_r", "510.parest_r", "557.xz_r", "nginx"]


def _spray(cpu) -> bytes:
    # Oversized copy payload: floods well past any handler buffer.
    return b"A" * 96


def _attack_controller() -> AttackController:
    controller = AttackController()
    # hit EVERY occurrence of the overflow-capable copy channels, so the
    # handler buffers (not just the first heap copy) are flooded
    for channel in ("memcpy", "memmove"):
        controller.add(channel, _spray, occurrence=None)
    return controller


@pytest.mark.parametrize("name", TARGETS)
class TestDynamicCoverage:
    def test_pythia_detects_injected_overflow(self, name):
        program = generate_program(get_profile(name))
        protected = protect(program.compile(), scheme="pythia")
        outcome = CPU(protected.module, attack=_attack_controller()).run(
            inputs=list(program.inputs)
        )
        assert outcome.detected, (name, outcome.status, outcome.trap)

    def test_vanilla_is_corrupted_not_trapped(self, name):
        """Without a defense the overflow corrupts silently: the program
        either finishes with bent state or wanders into a fault -- but
        no *security* trap ever fires."""
        program = generate_program(get_profile(name))
        vanilla = protect(program.compile(), scheme="vanilla")
        clean = CPU(vanilla.module).run(inputs=list(program.inputs))
        attacked = CPU(vanilla.module, attack=_attack_controller()).run(
            inputs=list(program.inputs)
        )
        assert not attacked.detected
        # the corruption is real: observable state diverges from the
        # clean run (or the program crashed on corrupted data)
        assert (
            attacked.output != clean.output
            or attacked.return_value != clean.return_value
            or attacked.status != clean.status
        ), name
