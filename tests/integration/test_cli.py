"""Tests for the command-line interface."""

import io
import sys

import pytest

from repro.cli import build_parser, main

VICTIM = """
int main() {
    char buf[16];
    char role[16];
    strcpy(role, "user");
    gets(buf);
    if (strncmp(role, "root", 4) == 0) { return 1; }
    printf("hi %s\\n", buf);
    return 0;
}
"""


@pytest.fixture
def victim_path(tmp_path):
    path = tmp_path / "victim.c"
    path.write_text(VICTIM)
    return str(path)


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCompile:
    def test_emits_ir(self, victim_path, capsys):
        code, out, _ = run_cli(["compile", victim_path], capsys)
        assert code == 0
        assert "define i64 @main()" in out
        assert "@gets" in out

    def test_mem2reg_flag(self, tmp_path, capsys):
        path = tmp_path / "scalars.c"
        path.write_text("int main() { int x = 1; int y = x + 2; return y; }")
        _, raw, _ = run_cli(["compile", str(path)], capsys)
        _, ssa, _ = run_cli(["compile", str(path), "--mem2reg"], capsys)
        assert ssa.count("alloca") < raw.count("alloca")

    def test_stdin(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "stdin", io.StringIO("int main() { return 0; }"))
        code, out, _ = run_cli(["compile", "-"], capsys)
        assert code == 0 and "ret i64 0" in out


class TestRun:
    def test_benign_run(self, victim_path, capsys):
        code, out, err = run_cli(
            ["run", victim_path, "--scheme", "pythia", "--input", "world"], capsys
        )
        assert code == 0
        assert "hi world" in out
        assert "status=ok" in err

    @pytest.mark.parametrize("scheme", ["vanilla", "cpa", "pythia", "dfi"])
    def test_all_schemes(self, victim_path, capsys, scheme):
        code, out, err = run_cli(
            ["run", victim_path, "--scheme", scheme, "--input", "x"], capsys
        )
        assert code == 0, err

    def test_fields_flag(self, victim_path, capsys):
        code, _, err = run_cli(
            ["run", victim_path, "--fields", "--input", "x"], capsys
        )
        assert code == 0


class TestAnalyze:
    def test_summary(self, victim_path, capsys):
        code, out, _ = run_cli(["analyze", victim_path], capsys)
        assert code == 0
        assert "refined (Pythia) set" in out
        assert "secured:" in out

    def test_verbose_lists_variables(self, victim_path, capsys):
        _, out, _ = run_cli(["analyze", victim_path, "--verbose"], capsys)
        assert "vulnerable:" in out


class TestAttackAndBench:
    def test_attack_scenario(self, capsys):
        code, out, _ = run_cli(["attack", "privilege_escalation"], capsys)
        assert code == 0
        assert "vanilla  -> success" in out
        assert "pythia   -> detected" in out

    def test_attack_unknown(self, capsys):
        code, out, _ = run_cli(["attack", "nope"], capsys)
        assert code == 1

    def test_scenarios_listing(self, capsys):
        code, out, _ = run_cli(["scenarios"], capsys)
        assert code == 0
        assert "privilege_escalation" in out
        assert "heap_overflow" in out

    def test_bench(self, capsys):
        code, out, _ = run_cli(["bench", "519.lbm_r"], capsys)
        assert code == 0
        assert "overhead=" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExitCodes:
    """Failures exit with one-line diagnostics and layered codes."""

    def test_missing_file_exits_3(self, capsys):
        code, _, err = run_cli(["run", "/no/such/file.c"], capsys)
        assert code == 3
        assert err.startswith("repro: error:")
        assert "Traceback" not in err

    def test_parse_error_exits_4(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text("int main( {")
        code, _, err = run_cli(["compile", str(path)], capsys)
        assert code == 4
        assert "repro: error:" in err
        assert "expected a type" in err

    def test_sema_error_exits_4(self, tmp_path, capsys):
        path = tmp_path / "sema.c"
        path.write_text("int main() { return bogus; }")
        code, _, err = run_cli(["compile", str(path)], capsys)
        assert code == 4
        assert "undeclared identifier" in err

    def test_missing_fault_plan_exits_3(self, capsys):
        code, _, err = run_cli(["chaos", "--plan", "/no/such/plan.json"], capsys)
        assert code == 3
        assert "repro: error:" in err

    def test_unknown_env_interpreter_exits_2(self, victim_path, capsys, monkeypatch):
        # --interpreter has argparse choices, but REPRO_INTERPRETER
        # bypasses them; the CPU's UnknownInterpreterError must surface
        # as a one-line diagnostic with the usage exit code, not a
        # traceback.
        monkeypatch.setenv("REPRO_INTERPRETER", "bogus")
        code, _, err = run_cli(["run", victim_path, "--input", "x"], capsys)
        assert code == 2
        assert err.startswith("repro: error:")
        assert "bogus" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_missing_profile_in_exits_3(self, victim_path, capsys):
        code, _, err = run_cli(
            ["run", victim_path, "--input", "x",
             "--interpreter", "trace", "--profile-in", "/no/such/prof.json"],
            capsys,
        )
        assert code == 3
        assert "repro: error:" in err


class TestChaos:
    def test_smoke_plan_passes_and_writes_manifest(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "chaos.json"
        code, out, _ = run_cli(
            ["chaos", "--seed", "2024", "--manifest", str(manifest)], capsys
        )
        assert code == 0
        assert "OK: every injected fault stayed within its defense contract" in out
        data = json.loads(manifest.read_text())
        assert data["ok"] is True
        assert data["violations"] == []
        assert len(data["cases"]) == len(data["plan"])

    def test_custom_plan_file(self, tmp_path, capsys):
        import json

        plan = tmp_path / "plan.json"
        plan.write_text(
            json.dumps(
                {"seed": 11, "specs": [{"kind": "pac.bits", "trigger": 1}]}
            )
        )
        code, out, _ = run_cli(["chaos", "--plan", str(plan)], capsys)
        assert code == 0
        assert "pac.bits" in out
        assert "contained" in out

    def test_untriggered_strict_fault_fails(self, tmp_path, capsys):
        import json

        plan = tmp_path / "plan.json"
        plan.write_text(
            json.dumps(
                {
                    "seed": 11,
                    "specs": [{"kind": "dfi.shadow", "trigger": 999999999}],
                }
            )
        )
        code, out, _ = run_cli(["chaos", "--plan", str(plan)], capsys)
        assert code == 2
        assert "FAIL" in out
        assert "not-triggered" in out

    @pytest.mark.parametrize(
        "text",
        [
            "{not json",
            '{"specs": "not-a-list"}',
            '{"seed": 1, "specs": [{"kind": "bogus.kind", "trigger": 1}]}',
            '{"seed": 1, "specs": [{"trigger": 1}]}',
        ],
        ids=["bad-json", "wrong-schema", "unknown-kind", "missing-kind"],
    )
    def test_malformed_plan_exits_3_with_one_line(self, tmp_path, capsys, text):
        plan = tmp_path / "plan.json"
        plan.write_text(text)
        code, _, err = run_cli(["chaos", "--plan", str(plan)], capsys)
        assert code == 3
        assert err.startswith("repro: error: invalid fault plan")
        assert str(plan) in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1


class TestCampaign:
    def test_campaign_writes_matrix_and_manifest(self, tmp_path, capsys):
        import json

        matrix = tmp_path / "matrix.json"
        manifest = tmp_path / "campaign.json"
        code, out, _ = run_cli(
            [
                "campaign", "--seed", "7", "--budget", "3",
                "--families", "pac_reuse,heap_cross,call_bend",
                "--no-reduce",
                "--matrix-out", str(matrix), "--manifest", str(manifest),
            ],
            capsys,
        )
        assert code == 0
        assert "OK: every vanilla bypass" in out
        data = json.loads(matrix.read_text())
        assert data["schema"] == "repro-campaign-matrix-v1"
        assert data["families"] == ["call_bend", "heap_cross", "pac_reuse"]
        full = json.loads(manifest.read_text())
        assert full["schema"] == "repro-campaign-v1"
        assert full["ok"] is True
        assert full["violations"] == []

    def test_unknown_family_exits_2(self, capsys):
        code, _, err = run_cli(
            ["campaign", "--budget", "1", "--families", "no_such_family"],
            capsys,
        )
        assert code == 2
        assert "no_such_family" in err


class TestObservabilityFlags:
    def test_run_writes_valid_trace_and_metrics(self, victim_path, tmp_path, capsys):
        import json

        from repro.observability import TRACE_SCHEMA, validate_snapshot

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        code, _, err = run_cli(
            [
                "run", victim_path, "--input", "x",
                "--trace-out", str(trace), "--metrics-out", str(metrics),
            ],
            capsys,
        )
        assert code == 0
        assert f"trace written to {trace}" in err
        assert f"metrics written to {metrics}" in err

        loaded = json.loads(trace.read_text())
        assert loaded["schema"] == TRACE_SCHEMA
        names = {event["name"] for event in loaded["traceEvents"]}
        assert "verify" in names and "mem2reg" in names  # compile phases
        assert "execute:pythia" in names

        snapshot = json.loads(metrics.read_text())
        assert validate_snapshot(snapshot) is None
        assert snapshot["counters"]["exec.runs"] == 1
        assert any(
            name.startswith("compile.phase.") for name in snapshot["histograms"]
        )

    def test_metrics_without_trace(self, victim_path, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        code, _, err = run_cli(
            ["run", victim_path, "--input", "x", "--metrics-out", str(metrics)],
            capsys,
        )
        assert code == 0
        assert metrics.exists()
        assert "trace written" not in err

    def test_metrics_reset_between_invocations(self, victim_path, tmp_path, capsys):
        import json

        metrics = tmp_path / "metrics.json"
        argv = ["run", victim_path, "--input", "x", "--metrics-out", str(metrics)]
        run_cli(argv, capsys)
        run_cli(argv, capsys)
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["exec.runs"] == 1  # not 2: no carry-over

    def test_timings_stderr_matches_metrics_exactly(
        self, victim_path, tmp_path, capsys
    ):
        """Satellite: --timings is a *view* of the span data, so the
        stderr table must be reproducible byte-for-byte from the
        exported metrics snapshot."""
        import json

        metrics = tmp_path / "metrics.json"
        code, _, err = run_cli(
            [
                "run", victim_path, "--input", "x", "--timings",
                "--metrics-out", str(metrics),
            ],
            capsys,
        )
        assert code == 0
        timing_lines = [
            line for line in err.splitlines() if line.startswith("[timing]")
        ]
        assert timing_lines[-1].startswith("[timing] total")

        snapshot = json.loads(metrics.read_text())
        prefix = "compile.phase."
        phases = {
            name[len(prefix):]: stats["sum"]
            for name, stats in snapshot["histograms"].items()
            if name.startswith(prefix)
        }
        expected = [
            f"[timing] {phase:24s} {seconds * 1e3:8.2f}ms"
            for phase, seconds in sorted(phases.items(), key=lambda item: -item[1])
        ]
        expected.append(f"[timing] {'total':24s} {sum(phases.values()) * 1e3:8.2f}ms")
        assert timing_lines == expected

    def test_suite_merges_worker_telemetry(self, tmp_path, capsys):
        import json

        from repro.observability import validate_snapshot

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        code, _, _ = run_cli(
            [
                "suite", "505.mcf_r", "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--trace-out", str(trace), "--metrics-out", str(metrics),
            ],
            capsys,
        )
        assert code == 0
        events = json.loads(trace.read_text())["traceEvents"]
        names = {event["name"] for event in events}
        assert "task:505.mcf_r" in names  # per-task span
        assert "verify" in names  # compile phases from the worker
        assert any(name.startswith("execute:") for name in names)
        assert any(name.startswith("cache.") for name in names)  # cache events

        snapshot = json.loads(metrics.read_text())
        assert validate_snapshot(snapshot) is None
        assert snapshot["counters"]["suite.tasks_completed"] == 1
        assert snapshot["counters"]["cache.misses"] > 0

    def test_unwritable_trace_out_exits_3(self, victim_path, tmp_path, capsys):
        code, _, err = run_cli(
            [
                "run", victim_path, "--input", "x",
                "--trace-out", str(tmp_path / "no" / "such" / "dir" / "t.json"),
            ],
            capsys,
        )
        assert code == 3
        assert "repro: error:" in err


class TestProfileCommand:
    def test_prints_hot_spot_tables(self, victim_path, capsys):
        code, out, _ = run_cli(["profile", victim_path, "--input", "x"], capsys)
        assert code == 0
        assert "run: status=ok interpreter=block" in out
        assert "hot functions (by self cycles):" in out
        assert "hot blocks (block tier, by cycles):" in out
        assert "opcode histogram (top):" in out
        assert "main" in out

    def test_top_caps_table_rows(self, victim_path, capsys):
        _, full, _ = run_cli(["profile", victim_path, "--input", "x"], capsys)
        _, capped, _ = run_cli(
            ["profile", victim_path, "--input", "x", "--top", "1"], capsys
        )
        def opcode_rows(text):
            lines = text.splitlines()
            start = lines.index("opcode histogram (top):")
            return [l for l in lines[start + 1:] if l.startswith("  ")]
        assert len(opcode_rows(capped)) == 1
        assert len(opcode_rows(full)) > 1

    def test_non_block_tier_profiles_functions_only(self, victim_path, capsys):
        code, out, _ = run_cli(
            ["profile", victim_path, "--input", "x", "--interpreter", "decoded"],
            capsys,
        )
        assert code == 0
        assert "hot functions (by self cycles):" in out
        assert "hot blocks" not in out


class TestProfileGuidedTrace:
    """The --profile-out -> --profile-in flow that feeds the trace tier."""

    def test_profile_out_then_trace_in_round_trip(
        self, victim_path, tmp_path, capsys
    ):
        import json

        prof = tmp_path / "prof.json"
        code, block_out, err = run_cli(
            ["run", victim_path, "--input", "x",
             "--interpreter", "block", "--profile-out", str(prof)],
            capsys,
        )
        assert code == 0
        assert f"profile written to {prof}" in err

        report = json.loads(prof.read_text())
        assert report["block_counts"]  # per-block counts for region selection

        code, trace_out, err = run_cli(
            ["run", victim_path, "--input", "x",
             "--interpreter", "trace", "--profile-in", str(prof)],
            capsys,
        )
        assert code == 0
        assert trace_out == block_out  # program output is bit-identical

    def test_decoded_tier_profile_carries_no_block_counts(
        self, victim_path, tmp_path, capsys
    ):
        prof = tmp_path / "prof.json"
        code, _, _ = run_cli(
            ["run", victim_path, "--input", "x",
             "--interpreter", "decoded", "--profile-out", str(prof)],
            capsys,
        )
        assert code == 0
        code, _, err = run_cli(
            ["run", victim_path, "--input", "x",
             "--interpreter", "trace", "--profile-in", str(prof)],
            capsys,
        )
        assert code != 0
        assert "repro: error:" in err
        assert "no per-block execution counts" in err

    def test_trace_interpreter_without_profile(self, victim_path, capsys):
        code, out, err = run_cli(
            ["run", victim_path, "--input", "x", "--interpreter", "trace"],
            capsys,
        )
        assert code == 0
        assert "hi x" in out
        assert "status=ok" in err
