"""Property-based fuzzing of the whole pipeline.

Hypothesis generates random (but always well-formed, always
terminating) MiniC programs and checks system-level invariants:

1. the front-end compiles them to verifiable IR;
2. execution is deterministic;
3. mem2reg and the optimizer preserve semantics;
4. all four defense schemes are benign-transparent: identical output
   and return value on non-attack runs.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import protect_all
from repro.frontend import compile_source
from repro.hardware import CPU
from repro.ir import verify_module
from repro.transforms import Mem2Reg, optimize

_BINOPS = ["+", "-", "*", "&", "|", "^"]
_CMPS = ["<", "<=", ">", ">=", "==", "!="]
_VARS = ["a", "b", "c"]


@st.composite
def expressions(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        if draw(st.booleans()):
            return str(draw(st.integers(0, 50)))
        return draw(st.sampled_from(_VARS))
    op = draw(st.sampled_from(_BINOPS))
    lhs = draw(expressions(depth=depth + 1))
    rhs = draw(expressions(depth=depth + 1))
    return f"({lhs} {op} {rhs})"


@st.composite
def conditions(draw):
    lhs = draw(expressions(depth=1))
    rhs = draw(expressions(depth=1))
    return f"{lhs} {draw(st.sampled_from(_CMPS))} {rhs}"


@st.composite
def statements(draw, depth=0):
    kind = draw(
        st.sampled_from(
            ["assign", "array", "if", "loop", "print"]
            if depth < 2
            else ["assign", "array", "print"]
        )
    )
    if kind == "assign":
        var = draw(st.sampled_from(_VARS))
        return f"{var} = {draw(expressions())};"
    if kind == "array":
        index = draw(st.integers(0, 3))
        return f"arr[{index}] = {draw(expressions())};"
    if kind == "print":
        return f'printf("%d\\n", {draw(expressions())});'
    if kind == "if":
        body = draw(st.lists(statements(depth=depth + 1), min_size=1, max_size=3))
        else_body = draw(st.lists(statements(depth=depth + 1), max_size=2))
        text = f"if ({draw(conditions())}) {{ " + " ".join(body) + " }"
        if else_body:
            text += " else { " + " ".join(else_body) + " }"
        return text
    # bounded loop: always terminates
    trips = draw(st.integers(1, 6))
    body = draw(st.lists(statements(depth=depth + 1), min_size=1, max_size=3))
    loop_var = f"i{depth}"
    return (
        f"for (int {loop_var} = 0; {loop_var} < {trips}; "
        f"{loop_var} = {loop_var} + 1) {{ " + " ".join(body) + " }"
    )


@st.composite
def programs(draw):
    body = draw(st.lists(statements(), min_size=1, max_size=6))
    return (
        "int main() {\n"
        "    int a = 1; int b = 2; int c = 3;\n"
        "    int arr[4];\n"
        "    arr[0] = 0; arr[1] = 1; arr[2] = 2; arr[3] = 3;\n"
        "    " + "\n    ".join(body) + "\n"
        "    return (a + b + c + arr[0] + arr[3]) & 1023;\n"
        "}\n"
    )


@given(programs())
@settings(max_examples=40, deadline=None)
def test_fuzz_compiles_and_verifies(source):
    module = compile_source(source)
    verify_module(module)
    result = CPU(module, max_steps=500_000).run()
    assert result.ok, (result.status, source)


@given(programs())
@settings(max_examples=25, deadline=None)
def test_fuzz_execution_deterministic(source):
    module = compile_source(source)
    a = CPU(module, seed=3).run()
    b = CPU(module, seed=3).run()
    assert (a.return_value, a.output, a.cycles) == (
        b.return_value,
        b.output,
        b.cycles,
    )


@given(programs())
@settings(max_examples=25, deadline=None)
def test_fuzz_mem2reg_and_optimize_preserve_semantics(source):
    plain = compile_source(source)
    before = CPU(plain).run()
    transformed = compile_source(source)
    Mem2Reg().run(transformed)
    optimize(transformed)
    verify_module(transformed)
    after = CPU(transformed).run()
    assert before.return_value == after.return_value, source
    assert before.output == after.output, source


@given(programs())
@settings(max_examples=12, deadline=None)
def test_fuzz_schemes_are_benign_transparent(source):
    module = compile_source(source)
    observations = set()
    for scheme, protected in protect_all(module).items():
        result = CPU(protected.module, max_steps=2_000_000).run()
        assert result.ok, (scheme, result.status, result.trap, source)
        observations.add((result.return_value, result.output))
    assert len(observations) == 1, (observations, source)
