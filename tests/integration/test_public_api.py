"""The public API surface: everything the README promises."""

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_schemes_constant(self):
        assert repro.SCHEMES == ("vanilla", "cpa", "pythia", "dfi")

    def test_readme_quickstart(self):
        """The exact flow the README's quickstart shows."""
        source = """
        int main() {
            char name[16];
            char role[16];
            strcpy(role, "user");
            gets(name);
            if (strncmp(role, "root", 4) == 0) { return 1; }
            return 0;
        }
        """
        module = repro.compile_source(source)
        protected = repro.protect(module, scheme="pythia")
        result = repro.CPU(protected.module).run(inputs=[b"alice"])
        assert result.ok

        attack = repro.AttackController().add(
            "gets", repro.overflow_payload(b"eve", 16, b"root\x00")
        )
        attacked = repro.CPU(protected.module, attack=attack).run()
        assert attacked.detected

    def test_analysis_entry_points(self, listing1_module):
        report = repro.analyze_module(repro.clone_module(listing1_module))
        assert report.refined_variables
        security = repro.build_security_report(report)
        assert security.total_branches >= 1

    def test_workload_entry_points(self):
        profile = repro.get_profile("519.lbm_r")
        program = repro.generate_program(profile)
        measurement = repro.measure_program(
            program, schemes=("vanilla", "pythia")
        )
        assert measurement.runtime_overhead("pythia") > 0

    def test_scenarios_entry_point(self):
        scenarios = repro.build_scenarios()
        assert len(scenarios) == 9

    def test_ir_roundtrip_entry_points(self, listing1_module):
        text = repro.print_module(listing1_module)
        module = repro.parse_module(text)
        repro.verify_module(module)
