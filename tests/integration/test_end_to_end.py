"""Integration tests: the full pipeline, cross-module invariants."""

import pytest

from repro import (
    CPU,
    AttackController,
    SCHEMES,
    build_scenarios,
    compile_source,
    generate_program,
    get_profile,
    overflow_payload,
    protect,
    protect_all,
)
from repro.ir import parse_module, print_module, verify_module


class TestPipeline:
    def test_source_to_detection(self):
        """The README's promise, end to end."""
        source = """
        int main() {
            char password[16];
            char role[16];
            strcpy(role, "guest");
            gets(password);
            if (strncmp(role, "admin", 5) == 0) { return 77; }
            return 0;
        }
        """
        module = compile_source(source)
        protected = protect(module, scheme="pythia")
        benign = CPU(protected.module).run(inputs=[b"letmein"])
        assert benign.ok and benign.return_value == 0

        attack = AttackController().add(
            "gets", overflow_payload(b"pw", 16, b"admin\x00")
        )
        attacked = CPU(protected.module, attack=attack).run()
        assert attacked.detected

        # the unprotected program is genuinely exploitable
        bent = CPU(protect(module, scheme="vanilla").module,
                   attack=AttackController().add(
                       "gets", overflow_payload(b"pw", 16, b"admin\x00"))).run()
        assert bent.return_value == 77

    def test_instrumented_modules_roundtrip_through_text(self, listing1_module):
        for scheme, result in protect_all(listing1_module).items():
            text = print_module(result.module)
            reparsed = parse_module(text)
            verify_module(reparsed)
            outcome = CPU(reparsed).run(inputs=[b"x"])
            assert outcome.ok, scheme

    def test_generated_benchmark_full_stack(self):
        program = generate_program(get_profile("538.imagick_r"))
        module = program.compile()
        results = protect_all(module)
        cycles = {}
        for scheme, result in results.items():
            outcome = CPU(result.module).run(inputs=list(program.inputs))
            assert outcome.ok, (scheme, outcome.trap)
            cycles[scheme] = outcome.cycles
        assert cycles["vanilla"] < cycles["pythia"] < cycles["cpa"]

    def test_double_protection_is_safe(self, listing1_module):
        """Protecting an already-protected module must not corrupt it."""
        once = protect(listing1_module, scheme="pythia")
        twice = protect(once.module, scheme="pythia")
        verify_module(twice.module)
        outcome = CPU(twice.module).run(inputs=[b"x"])
        assert outcome.ok


class TestDeterminism:
    def test_protection_is_deterministic(self, listing1_module):
        a = protect(listing1_module, scheme="pythia")
        b = protect(listing1_module, scheme="pythia")
        assert print_module(a.module) == print_module(b.module)

    def test_execution_is_deterministic_per_seed(self):
        program = generate_program(get_profile("519.lbm_r"))
        module = program.compile()
        result = protect(module, scheme="pythia")
        runs = [
            CPU(result.module, seed=11).run(inputs=list(program.inputs))
            for _ in range(2)
        ]
        assert runs[0].cycles == runs[1].cycles
        assert runs[0].output == runs[1].output

    def test_seeds_change_canaries_not_behaviour(self, listing1_module):
        result = protect(listing1_module, scheme="pythia")
        a = CPU(result.module, seed=1).run(inputs=[b"q"])
        b = CPU(result.module, seed=99).run(inputs=[b"q"])
        assert a.return_value == b.return_value
        assert a.output == b.output


class TestCrossSchemeInvariants:
    @pytest.mark.parametrize(
        "bench_name", ["505.mcf_r", "519.lbm_r", "557.xz_r"]
    )
    def test_outputs_identical_across_schemes(self, bench_name):
        program = generate_program(get_profile(bench_name))
        module = program.compile()
        outputs = {}
        for scheme, result in protect_all(module).items():
            outcome = CPU(result.module).run(inputs=list(program.inputs))
            assert outcome.ok, (scheme, outcome.trap)
            outputs[scheme] = (outcome.output, outcome.return_value)
        assert len(set(outputs.values())) == 1, outputs

    def test_every_scenario_has_a_working_defense(self):
        """No attack in the suite is unstoppable: at least one scheme
        detects or prevents each scenario."""
        for name, scenario in build_scenarios().items():
            assert scenario.detected_by or scenario.prevented_by, name
