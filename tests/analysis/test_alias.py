"""Tests for the Andersen may-alias analysis."""

import pytest

from repro.analysis import AliasAnalysis
from repro.frontend import compile_source
from repro.ir import Alloca, Call, Load, Store


def analyze(source):
    module = compile_source(source)
    return module, AliasAnalysis(module)


def alloca_named(module, fname, name):
    for inst in module.get_function(fname).instructions():
        if isinstance(inst, Alloca) and inst.name == name:
            return inst
    raise AssertionError(f"no alloca {name} in {fname}")


class TestBasics:
    def test_alloca_gets_object(self):
        module, alias = analyze("int main() { int x = 1; return x; }")
        x = alloca_named(module, "main", "x")
        pts = alias.points_to(x)
        assert len(pts) == 1
        assert next(iter(pts)).kind == "stack"

    def test_distinct_allocas_do_not_alias(self):
        module, alias = analyze("int main() { int x; int y; x = 1; y = 2; return x + y; }")
        x = alloca_named(module, "main", "x")
        y = alloca_named(module, "main", "y")
        assert not alias.may_alias(x, y)

    def test_gep_aliases_base(self):
        source = "int main() { int a[4]; a[2] = 1; return a[2]; }"
        module, alias = analyze(source)
        a = alloca_named(module, "main", "a")
        geps = [
            inst
            for inst in module.get_function("main").instructions()
            if inst.opcode == "getelementptr"
        ]
        assert geps
        for gep in geps:
            assert alias.may_alias(gep, a)

    def test_pointer_assignment_propagates(self):
        source = "int main() { int x = 1; int *p; p = &x; return *p; }"
        module, alias = analyze(source)
        x = alloca_named(module, "main", "x")
        x_obj = alias.object_for(x)
        loads = [
            i
            for i in module.get_function("main").instructions()
            if isinstance(i, Load) and str(i.type) == "i64*"
        ]
        assert loads
        assert any(x_obj in alias.points_to(load) for load in loads)

    def test_globals_have_objects(self):
        module, alias = analyze("int g;\nint main() { g = 1; return g; }")
        gvar = module.globals["g"]
        assert alias.object_for(gvar).kind == "global"

    def test_heap_object_per_site(self):
        source = """
        int main() {
            int *a; int *b;
            a = malloc(8);
            b = malloc(8);
            *a = 1; *b = 2;
            return *a + *b;
        }
        """
        module, alias = analyze(source)
        calls = [
            i
            for i in module.get_function("main").instructions()
            if isinstance(i, Call) and i.callee.name == "malloc"
        ]
        pts_a = alias.points_to(calls[0])
        pts_b = alias.points_to(calls[1])
        assert pts_a and pts_b and not (pts_a & pts_b)
        assert next(iter(pts_a)).is_heap


class TestInterprocedural:
    def test_arguments_inherit_caller_objects(self):
        source = """
        int deref(int *p) { return *p; }
        int main() { int x = 3; return deref(&x); }
        """
        module, alias = analyze(source)
        x = alloca_named(module, "main", "x")
        x_obj = alias.object_for(x)
        formal = module.get_function("deref").args[0]
        assert x_obj in alias.points_to(formal)

    def test_entry_points_get_summary_objects(self):
        source = "int entry(int *p) { return *p; }"
        module, alias = analyze(source)
        formal = module.get_function("entry").args[0]
        pts = alias.points_to(formal)
        assert any(o.kind == "arg" for o in pts)

    def test_called_functions_have_no_summary(self):
        source = """
        int helper(int *p) { return *p; }
        int main() { int x; x = 1; return helper(&x); }
        """
        module, alias = analyze(source)
        formal = module.get_function("helper").args[0]
        assert all(o.kind != "arg" for o in alias.points_to(formal))

    def test_return_value_flow(self):
        source = """
        int *pick(int *a) { return a; }
        int main() { int x = 1; int *p; p = pick(&x); return *p; }
        """
        module, alias = analyze(source)
        x = alloca_named(module, "main", "x")
        x_obj = alias.object_for(x)
        calls = [
            i
            for i in module.get_function("main").instructions()
            if isinstance(i, Call) and i.callee.name == "pick"
        ]
        assert x_obj in alias.points_to(calls[0])


class TestThroughMemory:
    def test_pointer_stored_and_loaded(self):
        source = """
        int main() {
            int x = 1;
            int *p; int **pp;
            p = &x;
            pp = &p;
            return **pp;
        }
        """
        module, alias = analyze(source)
        x_obj = alias.object_for(alloca_named(module, "main", "x"))
        # the load of *pp must point to x
        loads = [
            i
            for i in module.get_function("main").instructions()
            if isinstance(i, Load) and str(i.type) == "i64*"
        ]
        assert any(x_obj in alias.points_to(load) for load in loads)

    def test_must_alias_single(self):
        module, alias = analyze("int main() { int x = 1; return x; }")
        x = alloca_named(module, "main", "x")
        assert alias.must_alias_single(x) is alias.object_for(x)

    def test_must_alias_single_rejects_heap(self):
        source = "int main() { int *p; p = malloc(8); *p = 1; return *p; }"
        module, alias = analyze(source)
        calls = [
            i
            for i in module.get_function("main").instructions()
            if isinstance(i, Call) and i.callee.name == "malloc"
        ]
        assert alias.must_alias_single(calls[0]) is None

    def test_aliasing_pointers_query(self):
        source = "int main() { int x = 1; int *p; p = &x; return *p; }"
        module, alias = analyze(source)
        x_obj = alias.object_for(alloca_named(module, "main", "x"))
        holders = alias.aliasing_pointers(x_obj)
        assert len(holders) >= 2  # the alloca itself and the loaded pointer
