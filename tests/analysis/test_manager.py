"""AnalysisManager memoization and invalidation discipline."""

from __future__ import annotations

from repro.analysis.manager import (
    AnalysisManager,
    get_manager,
    invalidate_analyses,
)
from repro.core.framework import protect
from repro.frontend import compile_source
from repro.hardware.decoder import decode_module
from repro.transforms import Mem2Reg
from repro.transforms.pass_manager import PassManager
from repro.workloads import generate_program, get_profile

SOURCE = """
int main() {
    char buf[8];
    gets(buf);
    if (buf[0] > 3) {
        return 1;
    }
    return 0;
}
"""


def fresh_module():
    return compile_source(SOURCE, name="managed")


class _TouchPass:
    """A pass that mutates nothing but still ends a pipeline stage."""

    name = "touch"

    def run(self, module):
        return {}


def test_memoizes_per_module_and_counts():
    manager = AnalysisManager()
    module = fresh_module()
    first = manager.alias(module)
    assert manager.alias(module) is first
    assert (manager.hits, manager.misses) == (1, 1)

    other = fresh_module()
    assert manager.alias(other) is not first


def test_dependent_analyses_share_components():
    manager = AnalysisManager()
    module = fresh_module()
    memdu = manager.memdu(module)
    assert memdu.alias is manager.alias(module)
    assert memdu.channels is manager.channels(module)
    slicer = manager.slicer(module)
    assert slicer is manager.slicer(module)
    assert manager.dfi_slicer(module) is not slicer


def test_explicit_invalidation_drops_entries():
    manager = AnalysisManager()
    module = fresh_module()
    first = manager.alias(module)
    manager.invalidate(module)
    assert manager.alias(module) is not first

    second = manager.alias(module)
    manager.invalidate()  # whole-process form
    assert manager.alias(module) is not second


def test_fingerprint_guards_unreported_mutation():
    manager = AnalysisManager()
    # A promotable scalar, so mem2reg actually rewrites the module.
    module = compile_source(
        "int main() { int x; x = 4; if (x > 3) { return 1; } return 0; }"
    )
    stale = manager.alias(module)
    # Mutate without telling the manager: promotion changes instruction
    # counts, so the structural fingerprint no longer matches.
    Mem2Reg().run(module)
    assert manager.alias(module) is not stale


def test_separate_managers_do_not_share_results():
    module = fresh_module()
    ours = AnalysisManager()
    theirs = AnalysisManager()
    assert ours.alias(module) is not theirs.alias(module)


def test_seeded_analyses_are_served():
    manager = AnalysisManager()
    module = fresh_module()
    sentinel = object()
    manager.seed(module, alias=sentinel)
    assert manager.alias(module) is sentinel


def test_pass_manager_run_drops_decode_and_analysis_caches():
    module = fresh_module()
    Mem2Reg().run(module)
    invalidate_analyses(module)
    get_manager().alias(module)
    decode_module(module)
    assert getattr(module, "_analysis_entry", None) is not None
    assert getattr(module, "_decoded_program", None) is not None

    PassManager([_TouchPass()]).run(module)
    assert getattr(module, "_analysis_entry", None) is None
    assert getattr(module, "_decoded_program", None) is None


def test_empty_pipeline_keeps_caches():
    module = fresh_module()
    Mem2Reg().run(module)
    invalidate_analyses(module)
    cached = get_manager().alias(module)
    PassManager([]).run(module)
    assert get_manager().alias(module) is cached


def test_protect_mem2reg_hook_drops_caches():
    module = fresh_module()
    invalidate_analyses(module)
    get_manager().alias(module)
    decode_module(module)

    # mem2reg runs outside any PassManager, so protect() itself must
    # drop the pre-promotion caches.
    protect(module, scheme="vanilla", clone=False)
    assert getattr(module, "_analysis_entry", None) is None
    assert getattr(module, "_decoded_program", None) is None


def test_vulnerability_report_memoized_on_workload():
    manager = AnalysisManager()
    module = generate_program(get_profile("505.mcf_r")).compile()
    Mem2Reg().run(module)
    report = manager.vulnerability_report(module)
    assert manager.vulnerability_report(module) is report
    assert report.analysis is not None
    assert report.analysis.alias is manager.alias(module)
