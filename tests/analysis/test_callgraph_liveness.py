"""Tests for the call graph and SSA liveness."""

import pytest

from repro.analysis import CallGraph, Liveness
from repro.frontend import compile_source
from repro.transforms import Mem2Reg


class TestCallGraph:
    SOURCE = """
    int leaf(int x) { return x + 1; }
    int mid(int x) { return leaf(x) + leaf(x + 1); }
    int main() { return mid(3) + strlen("ab"); }
    """

    def test_callees(self):
        module = compile_source(self.SOURCE)
        cg = CallGraph(module)
        main = module.get_function("main")
        names = {f.name for f in cg.callees[main]}
        assert names == {"mid", "strlen"}

    def test_callers(self):
        module = compile_source(self.SOURCE)
        cg = CallGraph(module)
        leaf = module.get_function("leaf")
        assert {f.name for f in cg.callers_of(leaf)} == {"mid"}

    def test_call_sites(self):
        module = compile_source(self.SOURCE)
        cg = CallGraph(module)
        leaf = module.get_function("leaf")
        assert len(cg.call_sites_of(leaf)) == 2

    def test_bottom_up_order(self):
        module = compile_source(self.SOURCE)
        cg = CallGraph(module)
        order = [f.name for f in cg.bottom_up_order()]
        assert order.index("leaf") < order.index("mid") < order.index("main")

    def test_recursion_detection(self):
        source = """
        int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
        int main() { return fact(4); }
        """
        module = compile_source(source)
        cg = CallGraph(module)
        assert cg.is_recursive(module.get_function("fact"))
        assert not cg.is_recursive(module.get_function("main"))

    def test_mutual_recursion_detection(self):
        source = """
        int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
        int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
        int main() { return even(4); }
        """
        module = compile_source(source)
        cg = CallGraph(module)
        assert cg.is_recursive(module.get_function("even"))


class TestLiveness:
    def test_value_live_across_block(self):
        source = """
        int main() {
            int x = 5;
            int y = 0;
            if (x > 2) { y = x + 1; } else { y = x - 1; }
            return y + x;
        }
        """
        module = compile_source(source)
        Mem2Reg().run(module)
        main = module.get_function("main")
        liveness = Liveness(main)
        assert liveness.max_pressure() >= 1

    def test_pressure_grows_with_live_values(self):
        few = compile_source("int main() { int a = 1; return a; }")
        many_source = (
            "int main() { "
            + " ".join(f"int v{i} = {i};" for i in range(12))
            + "int s = 0;"
            + "if (v0 > 0) { s = "
            + " + ".join(f"v{i}" for i in range(12))
            + "; } return s; }"
        )
        many = compile_source(many_source)
        for module in (few, many):
            Mem2Reg().run(module)
        low = Liveness(few.get_function("main")).max_pressure()
        high = Liveness(many.get_function("main")).max_pressure()
        assert high > low

    def test_estimated_spills(self):
        module = compile_source("int main() { return 1; }")
        Mem2Reg().run(module)
        liveness = Liveness(module.get_function("main"))
        assert liveness.estimated_spills() == 0
        assert liveness.estimated_spills(registers=0) == liveness.max_pressure()
