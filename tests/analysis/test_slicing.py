"""Tests for branch decomposition and input-channel construction."""

import pytest

from repro.analysis import (
    AliasAnalysis,
    BackwardSlicer,
    ForwardSlicer,
    InputChannelAnalysis,
    MemoryDefUse,
)
from repro.core import clone_module
from repro.frontend import compile_source
from repro.transforms import Mem2Reg


def slicers(source, dfi=False):
    module = compile_source(source)
    Mem2Reg().run(module)
    alias = AliasAnalysis(module)
    channels = InputChannelAnalysis(module)
    memdu = MemoryDefUse(module, alias, channels)
    backward = BackwardSlicer(
        module, alias, channels, memdu, stop_at_pointer_arithmetic=dfi
    )
    forward = ForwardSlicer(module, alias, channels, memdu)
    return module, backward, forward


TAINTED_BRANCH = """
int main() {
    int x = 0;
    int clean = 5;
    scanf("%d", &x);
    int y = x * 2;
    if (y > 10) { printf("big\\n"); return 1; }
    if (clean > 3) { printf("clean\\n"); }
    return 0;
}
"""


class TestBackwardSlicing:
    def test_tainted_branch_reaches_ic(self):
        module, backward, _ = slicers(TAINTED_BRANCH)
        branches = module.get_function("main").conditional_branches()
        tainted = backward.slice_branch(branches[0])
        assert tainted.reaches_input_channel
        assert tainted.ic_distance is not None

    def test_clean_branch_does_not_reach_ic(self):
        module, backward, _ = slicers(TAINTED_BRANCH)
        branches = module.get_function("main").conditional_branches()
        clean = backward.slice_branch(branches[1])
        assert not clean.reaches_input_channel

    def test_slice_collects_variables(self, listing1_module):
        module = clone_module(listing1_module)
        Mem2Reg().run(module)
        backward = BackwardSlicer(module)
        branch = module.get_function("access_check").conditional_branches()[0]
        result = backward.slice_branch(branch)
        labels = {v.label for v in result.variables}
        assert any(label.endswith("%user") for label in labels)

    def test_slice_length_positive(self):
        module, backward, _ = slicers(TAINTED_BRANCH)
        branch = module.get_function("main").conditional_branches()[0]
        assert backward.slice_branch(branch).length >= 2

    def test_interprocedural_extension(self):
        source = """
        int classify(int v) {
            if (v > 3) { return 1; }
            return 0;
        }
        int main() {
            int x = 0;
            scanf("%d", &x);
            return classify(x);
        }
        """
        module, backward, _ = slicers(source)
        branch = module.get_function("classify").conditional_branches()[0]
        result = backward.slice_branch(branch)
        assert result.reaches_input_channel

    def test_pointer_arithmetic_recorded(self):
        source = """
        int main() {
            int a[4];
            int *p;
            a[0] = 1;
            p = a;
            p = p + 2;
            if (*p > 0) { return 1; }
            return 0;
        }
        """
        module, backward, _ = slicers(source)
        branch = module.get_function("main").conditional_branches()[0]
        assert backward.slice_branch(branch).has_pointer_arithmetic

    def test_field_access_recorded(self):
        source = """
        struct s { int a; int b; };
        int main() {
            struct s v;
            v.a = 1;
            if (v.a > 0) { return 1; }
            return 0;
        }
        """
        module, backward, _ = slicers(source)
        branch = module.get_function("main").conditional_branches()[0]
        assert backward.slice_branch(branch).has_field_access

    def test_unresolved_memory_marks_complex(self):
        source = """
        int check(int **pp, int on) {
            int *q;
            if (on > 0) {
                q = *pp;
                if (*q > 3) { return 1; }
            }
            return 0;
        }
        int main() {
            char *region;
            region = mmap(32);
            return check(region, 0);
        }
        """
        module, backward, _ = slicers(source)
        branches = module.get_function("check").conditional_branches()
        deep = backward.slice_branch(branches[1])
        assert deep.complex_interprocedural

    def test_pointer_fraction(self):
        module, backward, _ = slicers(TAINTED_BRANCH)
        branch = module.get_function("main").conditional_branches()[0]
        fraction = backward.slice_branch(branch).pointer_fraction()
        assert 0.0 <= fraction <= 1.0


class TestDfiTermination:
    POINTER_SOURCE = """
    int main() {
        int a[4];
        int *p;
        int x = 0;
        scanf("%d", &x);
        a[0] = x;
        p = a;
        p = p + 1;
        if (*p > 0) { return 1; }
        return 0;
    }
    """

    def test_dfi_mode_terminates_at_arithmetic(self):
        module, dfi_slicer, _ = slicers(self.POINTER_SOURCE, dfi=True)
        branch = module.get_function("main").conditional_branches()[0]
        result = dfi_slicer.slice_branch(branch)
        assert result.terminated_at

    def test_pythia_mode_keeps_going(self):
        module, backward, _ = slicers(self.POINTER_SOURCE)
        branch = module.get_function("main").conditional_branches()[0]
        result = backward.slice_branch(branch)
        assert not result.terminated_at

    def test_dfi_slice_not_longer_than_pythia(self):
        module_a, dfi_slicer, _ = slicers(self.POINTER_SOURCE, dfi=True)
        module_b, backward, _ = slicers(self.POINTER_SOURCE)
        branch_a = module_a.get_function("main").conditional_branches()[0]
        branch_b = module_b.get_function("main").conditional_branches()[0]
        assert (
            dfi_slicer.slice_branch(branch_a).length
            <= backward.slice_branch(branch_b).length
        )

    def test_plain_array_indexing_not_hostile(self):
        source = """
        int sum(int *v, int n) {
            int t = 0;
            for (int i = 0; i < n; i = i + 1) { t = t + v[i]; }
            return t;
        }
        int main() {
            int a[4];
            int x = 0;
            scanf("%d", &x);
            a[0] = x;
            if (sum(a, 4) > 2) { return 1; }
            return 0;
        }
        """
        module, dfi_slicer, _ = slicers(source, dfi=True)
        branch = module.get_function("main").conditional_branches()[0]
        result = dfi_slicer.slice_branch(branch)
        assert not result.terminated_at  # v[i] through a parameter is fine


class TestForwardSlicing:
    def test_taint_propagates_through_computation(self):
        module, _, forward = slicers(TAINTED_BRANCH)
        result = forward.slice_all()
        labels = {v.label for v in result.variables}
        assert any(label.endswith("%x") for label in labels)

    def test_taint_propagates_through_stores(self):
        source = """
        int main() {
            int x = 0;
            int copies[2];
            scanf("%d", &x);
            copies[0] = x;
            return copies[0];
        }
        """
        module, _, forward = slicers(source)
        result = forward.slice_all()
        labels = {v.label for v in result.variables}
        assert any(label.endswith("%copies") for label in labels)

    def test_clean_variables_not_tainted(self):
        module, _, forward = slicers(TAINTED_BRANCH)
        result = forward.slice_all()
        labels = {v.label for v in result.variables}
        assert not any(label.endswith("%clean") for label in labels)

    def test_single_site_slice(self, listing1_module):
        module = clone_module(listing1_module)
        Mem2Reg().run(module)
        alias = AliasAnalysis(module)
        channels = InputChannelAnalysis(module)
        memdu = MemoryDefUse(module, alias, channels)
        forward = ForwardSlicer(module, alias, channels, memdu)
        gets_site = next(s for s in channels.sites if s.call.callee.name == "gets")
        result = forward.slice_site(gets_site)
        labels = {v.label for v in result.variables}
        assert any(label.endswith("%str") for label in labels)
        assert not any(label.endswith("%user") for label in labels)


class TestSliceValue:
    def test_arbitrary_value_slice(self):
        module, backward, _ = slicers(TAINTED_BRANCH)
        main = module.get_function("main")
        branch = main.conditional_branches()[0]
        # slicing the raw condition value matches slicing the branch
        by_value = backward.slice_value(branch.condition, main)
        by_branch = backward.slice_branch(branch)
        assert by_value.branch is None
        assert by_value.variables == by_branch.variables
        assert by_value.reaches_input_channel == by_branch.reaches_input_channel
