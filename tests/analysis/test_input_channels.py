"""Tests for input-channel detection and classification."""

import pytest

from repro.analysis import IC_CATEGORIES, InputChannelAnalysis
from repro.frontend import compile_source


def channels(source):
    module = compile_source(source)
    return module, InputChannelAnalysis(module)


class TestDetection:
    def test_library_ics_found(self, listing1_module):
        analysis = InputChannelAnalysis(listing1_module)
        names = sorted(s.call.callee.name for s in analysis.sites)
        assert names == ["gets", "printf", "printf", "strcpy"]

    def test_categories(self, listing1_module):
        analysis = InputChannelAnalysis(listing1_module)
        kinds = {s.call.callee.name: s.kind for s in analysis.sites}
        assert kinds["gets"] == "get"
        assert kinds["strcpy"] == "put"
        assert kinds["printf"] == "print"

    def test_written_pointers(self, listing1_module):
        analysis = InputChannelAnalysis(listing1_module)
        gets_site = next(s for s in analysis.sites if s.call.callee.name == "gets")
        assert len(gets_site.written_pointers) == 1

    def test_non_ic_utilities_excluded(self):
        module, analysis = channels(
            'int main() { return strlen("x") + strcmp("a", "b"); }'
        )
        assert analysis.total() == 0

    def test_mmap_writes_return(self):
        module, analysis = channels("int main() { char *m; m = mmap(8); return 0; }")
        site = analysis.sites[0]
        assert site.kind == "map" and site.writes_return

    def test_distribution(self):
        source = """
        int main() {
            char a[8]; char b[8];
            strcpy(a, "x");
            memcpy(b, a, 4);
            printf("%s", a);
            return 0;
        }
        """
        module, analysis = channels(source)
        dist = analysis.distribution()
        assert dist["put"] == 1
        assert dist["movecopy"] == 1
        assert dist["print"] == 1
        assert sum(dist.values()) == analysis.total() == 3

    def test_all_categories_enumerable(self):
        assert set(IC_CATEGORIES) == {"print", "scan", "movecopy", "get", "put", "map"}

    def test_sites_in_function(self, listing1_module):
        analysis = InputChannelAnalysis(listing1_module)
        access = listing1_module.get_function("access_check")
        assert len(analysis.sites_in(access)) == 4
        assert analysis.sites_in(listing1_module.get_function("main")) == []


class TestDispatchers:
    def test_wrapper_detected_as_dispatcher(self):
        source = """
        void my_read(char *dest) {
            gets(dest);
        }
        int main() {
            char buf[16];
            my_read(buf);
            return 0;
        }
        """
        module, analysis = channels(source)
        my_read = module.get_function("my_read")
        assert analysis.dispatchers.get(my_read) == "get"
        # the call site of the dispatcher itself is an IC site
        kinds = {s.call.callee.name: s.kind for s in analysis.sites}
        assert kinds.get("my_read") == "get"

    def test_transitive_dispatcher(self):
        source = """
        void inner(char *d) { gets(d); }
        void outer(char *d) { inner(d); }
        int main() { char b[8]; outer(b); return 0; }
        """
        module, analysis = channels(source)
        assert module.get_function("outer") in analysis.dispatchers

    def test_non_forwarding_function_not_dispatcher(self):
        source = """
        int helper(char *d) { return strlen(d); }
        int main() { char b[8]; b[0] = 0; return helper(b); }
        """
        module, analysis = channels(source)
        assert module.get_function("helper") not in analysis.dispatchers

    def test_nginx_style_copy_wrapper(self):
        source = """
        void ngx_cpy(char *dst, char *src) { memcpy(dst, src, 8); }
        int main() {
            char a[16]; char b[16];
            strcpy(a, "data");
            ngx_cpy(b, a);
            return 0;
        }
        """
        module, analysis = channels(source)
        assert analysis.dispatchers.get(module.get_function("ngx_cpy")) == "movecopy"
