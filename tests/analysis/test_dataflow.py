"""Tests for memory def-use indexing and reaching definitions."""

import pytest

from repro.analysis import (
    AliasAnalysis,
    InputChannelAnalysis,
    MemoryDefUse,
    ReachingDefinitions,
)
from repro.frontend import compile_source
from repro.ir import Load, Store
from repro.transforms import Mem2Reg


def build(source):
    module = compile_source(source)
    Mem2Reg().run(module)
    alias = AliasAnalysis(module)
    channels = InputChannelAnalysis(module)
    memdu = MemoryDefUse(module, alias, channels)
    return module, alias, memdu


def loads_in(module, fname):
    return [i for i in module.get_function(fname).instructions() if isinstance(i, Load)]


class TestMemoryDefUse:
    def test_stores_indexed(self):
        source = "int main() { int a[2]; a[0] = 1; a[1] = 2; return a[0]; }"
        module, alias, memdu = build(source)
        allocas = module.get_function("main").allocas()
        obj = alias.object_for(allocas[0])
        assert len(memdu.defs_of_object(obj)) == 2

    def test_loads_indexed(self):
        source = "int main() { int a[2]; a[0] = 1; return a[0] + a[1]; }"
        module, alias, memdu = build(source)
        obj = alias.object_for(module.get_function("main").allocas()[0])
        assert len(memdu.loads_by_object.get(obj, [])) == 2

    def test_ic_writes_are_defs(self):
        source = "int main() { char b[8]; gets(b); return b[0]; }"
        module, alias, memdu = build(source)
        obj = alias.object_for(module.get_function("main").allocas()[0])
        ic_defs = memdu.ic_defs_of_object(obj)
        assert len(ic_defs) == 1
        assert ic_defs[0].ic_site.kind == "get"

    def test_may_defs_for_load(self):
        source = "int main() { int a[2]; a[0] = 5; return a[0]; }"
        module, alias, memdu = build(source)
        load = loads_in(module, "main")[0]
        defs = memdu.may_defs_for_load(load)
        assert len(defs) == 1
        assert isinstance(defs[0].inst, Store)

    def test_def_ids_unique(self, listing1_module):
        from repro.core import clone_module

        module = clone_module(listing1_module)
        Mem2Reg().run(module)
        alias = AliasAnalysis(module)
        memdu = MemoryDefUse(module, alias)
        ids = [d.def_id for d in memdu.defs]
        assert len(ids) == len(set(ids))


class TestReachingDefinitions:
    def test_straightline_reaching(self):
        source = "int main() { int a[1]; a[0] = 1; return a[0]; }"
        module, alias, memdu = build(source)
        rd = ReachingDefinitions(module.get_function("main"), memdu)
        load = loads_in(module, "main")[0]
        reaching = rd.reaching(load)
        assert len(reaching) == 1

    def test_full_overwrite_kills(self):
        source = """
        int main() {
            int x;
            int *p;
            p = &x;
            *p = 1;
            *p = 2;
            return *p;
        }
        """
        module, alias, memdu = build(source)
        rd = ReachingDefinitions(module.get_function("main"), memdu)
        load = loads_in(module, "main")[-1]
        reaching = rd.reaching(load)
        # the second store strongly updates the whole object
        assert len(reaching) == 1

    def test_element_store_does_not_kill_sibling(self):
        source = """
        int main() {
            int a[2];
            a[0] = 1;
            a[1] = 2;
            return a[0];
        }
        """
        module, alias, memdu = build(source)
        rd = ReachingDefinitions(module.get_function("main"), memdu)
        load = loads_in(module, "main")[0]
        # both element stores must reach: a[1]=2 must not kill a[0]=1
        assert len(rd.reaching(load)) == 2

    def test_branch_merge_unions(self):
        source = """
        int main() {
            int a[1];
            int x = 0;
            scanf("%d", &x);
            if (x > 0) { a[0] = 1; } else { a[0] = 2; }
            return a[0];
        }
        """
        module, alias, memdu = build(source)
        rd = ReachingDefinitions(module.get_function("main"), memdu)
        load = [
            l for l in loads_in(module, "main") if str(l.pointer.type) == "i64*"
        ][-1]
        stores = {d for d in rd.reaching(load) if isinstance(d.inst, Store)}
        assert len(stores) == 2

    def test_loop_defs_reach_header(self):
        source = """
        int main() {
            int a[1];
            a[0] = 0;
            for (int i = 0; i < 3; i = i + 1) { a[0] = a[0] + 1; }
            return a[0];
        }
        """
        module, alias, memdu = build(source)
        rd = ReachingDefinitions(module.get_function("main"), memdu)
        load = loads_in(module, "main")[0]  # the a[0] inside the loop
        assert len(rd.reaching(load)) == 2  # init and loop store

    def test_reaching_at_call(self, listing1_module):
        from repro.core import clone_module
        from repro.ir import Call

        module = clone_module(listing1_module)
        Mem2Reg().run(module)
        alias = AliasAnalysis(module)
        channels = InputChannelAnalysis(module)
        memdu = MemoryDefUse(module, alias, channels)
        access = module.get_function("access_check")
        rd = ReachingDefinitions(access, memdu)
        strncmp_call = next(
            i
            for i in access.instructions()
            if isinstance(i, Call) and i.callee.name == "strncmp"
        )
        user_obj = next(
            o for o in alias.objects if o.label.endswith("%user")
        )
        reaching = rd.reaching_at(strncmp_call, {user_obj})
        # the strcpy IC write to user reaches the comparison
        assert any(d.is_input_channel for d in reaching)
