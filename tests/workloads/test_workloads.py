"""Tests for profiles, the program generator, and the nginx workload."""

import pytest

from repro.core import protect_all
from repro.hardware import CPU
from repro.ir import verify_module
from repro.workloads import (
    ALL_PROFILES,
    DURATION_BATCHES,
    NGINX_PROFILE,
    SPEC_PROFILES,
    generate_program,
    get_profile,
    nginx_program,
    profile_names,
    run_nginx,
    transfer_rate_overhead,
)


class TestProfiles:
    def test_sixteen_benchmarks(self):
        assert len(ALL_PROFILES) == 16
        assert len(SPEC_PROFILES) == 15
        assert "nginx" in ALL_PROFILES

    def test_paper_benchmarks_present(self):
        for name in ("502.gcc_r", "519.lbm_r", "510.parest_r", "525.x264_r"):
            assert name in SPEC_PROFILES

    def test_get_profile(self):
        assert get_profile("nginx") is NGINX_PROFILE
        with pytest.raises(KeyError):
            get_profile("600.nope")

    def test_profile_names_order(self):
        assert profile_names()[-1] == "nginx"

    def test_languages(self):
        assert get_profile("510.parest_r").is_cpp
        assert not get_profile("505.mcf_r").is_cpp

    def test_fully_protectable_profiles_have_no_opaque_helpers(self):
        for name in ("519.lbm_r", "505.mcf_r", "525.x264_r"):
            assert get_profile(name).opaque_functions == 0

    def test_nginx_ic_mix_is_copy_dominated(self):
        weights = NGINX_PROFILE.ic_weights
        assert weights[1] > 20 * weights[0]  # movecopy >> print


class TestGenerator:
    def test_deterministic(self):
        a = generate_program(get_profile("502.gcc_r"))
        b = generate_program(get_profile("502.gcc_r"))
        assert a.source == b.source
        assert a.inputs == b.inputs

    def test_different_seeds_differ(self):
        a = generate_program(get_profile("502.gcc_r"))
        b = generate_program(get_profile("500.perlbench_r"))
        assert a.source != b.source

    def test_compiles_and_verifies(self):
        module = generate_program(get_profile("505.mcf_r")).compile()
        verify_module(module)

    def test_function_mix_matches_profile(self):
        profile = get_profile("502.gcc_r")
        module = generate_program(profile).compile()
        names = set(module.functions)
        assert f"hot_compute{profile.hot_functions - 1}" in names
        assert f"tainted_compute{profile.tainted_functions - 1}" in names
        assert f"handle_input{profile.ic_handlers - 1}" in names
        assert f"pointer_walk{profile.pointer_functions - 1}" in names

    def test_runs_clean_under_every_scheme(self):
        program = generate_program(get_profile("557.xz_r"))
        for scheme, result in protect_all(program.compile()).items():
            outcome = CPU(result.module).run(inputs=list(program.inputs))
            assert outcome.ok, (scheme, outcome.status, outcome.trap)

    def test_branch_count_scales_with_profile(self):
        small = generate_program(get_profile("519.lbm_r")).compile()
        large = generate_program(get_profile("502.gcc_r")).compile()
        count = lambda m: sum(
            len(f.conditional_branches()) for f in m.defined_functions()
        )
        assert count(large) > count(small)

    def test_ic_distribution_follows_weights(self):
        from repro.analysis import InputChannelAnalysis

        module = generate_program(NGINX_PROFILE).compile()
        dist = InputChannelAnalysis(module).distribution()
        assert dist["movecopy"] > dist["print"]

    def test_inputs_cover_reads(self):
        program = generate_program(get_profile("510.parest_r"))
        outcome = CPU(program.compile()).run(inputs=list(program.inputs))
        assert outcome.ok


class TestNginxWorkload:
    def test_durations(self):
        assert set(DURATION_BATCHES) == {"3s", "30s", "300s"}
        assert DURATION_BATCHES["300s"] > DURATION_BATCHES["3s"]

    def test_program_scales_with_duration(self):
        short = nginx_program("3s")
        long = nginx_program("30s")
        assert short.profile.outer_iterations < long.profile.outer_iterations

    def test_run_nginx_produces_rates(self):
        runs = run_nginx(durations=("3s",), schemes=("vanilla", "pythia"))
        assert len(runs) == 2
        for run in runs:
            assert run.cycles > 0
            assert run.transfer_rate > 0

    def test_transfer_rate_overhead_positive(self):
        runs = run_nginx(durations=("3s",), schemes=("vanilla", "pythia", "cpa"))
        pythia = transfer_rate_overhead(runs, "pythia")
        cpa = transfer_rate_overhead(runs, "cpa")
        assert 0 < pythia < cpa < 1
