"""The full scenario/scheme detection matrix -- the §6.3 evaluation.

For every scenario and every scheme this asserts three things:

1. the benign workload behaves identically to the unprotected program;
2. the attack *succeeds* under vanilla execution (the vulnerability is
   real);
3. the defense produces exactly its expected outcome: ``detected``
   (a trap fired), ``prevented`` (isolation stopped the corruption), or
   ``success`` (the scheme's documented blind spot).
"""

import pytest

from repro.attacks import build_scenarios
from repro.core import SCHEMES, protect

SCENARIOS = build_scenarios()


def expected_outcome(scenario, scheme):
    if scheme == "vanilla":
        return "success"
    if scheme in scenario.detected_by:
        return "detected"
    if scheme in scenario.prevented_by:
        return "prevented"
    return "success"


@pytest.fixture(scope="module")
def protected_modules():
    cache = {}
    for name, scenario in SCENARIOS.items():
        module = scenario.compile()
        cache[name] = {
            scheme: protect(module, scheme=scheme) for scheme in SCHEMES
        }
    return cache


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("scheme", SCHEMES)
class TestMatrix:
    def test_benign_run_is_clean(self, protected_modules, name, scheme):
        scenario = SCENARIOS[name]
        result = scenario.run_benign(protected_modules[name][scheme].module)
        assert result.ok, f"{name}/{scheme}: {result.status} {result.trap}"
        assert scenario.benign_marker in result.output

    def test_attack_outcome_matches_paper(self, protected_modules, name, scheme):
        scenario = SCENARIOS[name]
        result = scenario.run_attack(protected_modules[name][scheme].module)
        outcome = scenario.attack_outcome(result)
        assert outcome == expected_outcome(scenario, scheme), (
            f"{name}/{scheme}: got {outcome} "
            f"(status={result.status}, trap={result.trap})"
        )


class TestScenarioShape:
    def test_nine_scenarios(self):
        # the paper's six listings plus the three campaign families
        # (signed-pointer reuse, call bending, cross-section confusion)
        assert len(SCENARIOS) == 9

    def test_cpa_detects_everything_it_claims(self):
        # the conservative scheme's completeness claim (§4.2): it detects
        # every scenario except the pure-dataflow misdirection, which no
        # integrity scheme can flag once the wild store is itself signed
        for name, scenario in SCENARIOS.items():
            if name == "pointer_misdirection":
                continue
            assert "cpa" in scenario.detected_by, name

    def test_pythia_covers_all_overflow_attacks(self):
        overflow_scenarios = (
            "privilege_escalation",
            "proftpd_leak",
            "pointer_dualism",
            "interprocedural",
        )
        for name in overflow_scenarios:
            assert "pythia" in SCENARIOS[name].detected_by

    def test_pythia_prevents_heap_attack(self):
        assert "pythia" in SCENARIOS["heap_overflow"].prevented_by
        assert "pythia" in SCENARIOS["heap_cross"].prevented_by

    def test_campaign_families_have_scenarios(self):
        # one victim per campaign attack family (see
        # repro.robustness.campaign.FAMILIES)
        for name in ("pac_reuse", "call_bend", "heap_cross"):
            assert name in SCENARIOS

    def test_dfi_misses_field_insensitive_case(self):
        assert "dfi" not in SCENARIOS["proftpd_leak"].detected_by

    def test_scenarios_compile_and_verify(self):
        from repro.ir import verify_module

        for scenario in SCENARIOS.values():
            verify_module(scenario.compile())

    def test_attack_is_reproducible(self):
        scenario = SCENARIOS["privilege_escalation"]
        module = scenario.compile()
        result_a = scenario.run_attack(module)
        result_b = scenario.run_attack(module)
        assert result_a.output == result_b.output
        assert result_a.status == result_b.status
