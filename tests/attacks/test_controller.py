"""Tests for the attack controller and payload helpers."""

import pytest

from repro.attacks import AttackController, Injection, overflow_payload


class _FakeCpu:
    pass


class TestController:
    def test_fires_on_matching_channel(self):
        controller = AttackController().add("gets", b"evil")
        assert controller.payload_for(_FakeCpu(), "gets", []) == b"evil"
        assert controller.any_fired

    def test_non_matching_channel_passthrough(self):
        controller = AttackController().add("gets", b"evil")
        assert controller.payload_for(_FakeCpu(), "strcpy", []) is None

    def test_occurrence_targeting(self):
        controller = AttackController().add("gets", b"evil", occurrence=2)
        cpu = _FakeCpu()
        assert controller.payload_for(cpu, "gets", []) is None
        assert controller.payload_for(cpu, "gets", []) == b"evil"

    def test_fires_only_once(self):
        controller = AttackController().add("gets", b"evil")
        cpu = _FakeCpu()
        assert controller.payload_for(cpu, "gets", []) == b"evil"
        assert controller.payload_for(cpu, "gets", []) is None

    def test_multiple_injections(self):
        controller = (
            AttackController().add("gets", b"one").add("scanf%d", b"9")
        )
        cpu = _FakeCpu()
        assert controller.payload_for(cpu, "scanf%d", []) == b"9"
        assert controller.payload_for(cpu, "gets", []) == b"one"

    def test_callable_payload_gets_cpu(self):
        seen = {}

        def payload(cpu):
            seen["cpu"] = cpu
            return b"dynamic"

        controller = AttackController().add("gets", payload)
        cpu = _FakeCpu()
        assert controller.payload_for(cpu, "gets", []) == b"dynamic"
        assert seen["cpu"] is cpu

    def test_log_records_deliveries(self):
        controller = AttackController().add("gets", b"abcd")
        controller.payload_for(_FakeCpu(), "gets", [])
        assert controller.log and "gets#1" in controller.log[0]

    def test_reset(self):
        controller = AttackController().add("gets", b"x")
        controller.payload_for(_FakeCpu(), "gets", [])
        controller.reset()
        assert not controller.any_fired
        assert controller.payload_for(_FakeCpu(), "gets", []) == b"x"


class TestOverflowPayload:
    def test_layout(self):
        payload = overflow_payload(b"ab", 4, b"XY")
        assert payload == b"abAAXY"

    def test_exact_prefix(self):
        assert overflow_payload(b"abcd", 4, b"Z") == b"abcdZ"

    def test_prefix_too_long(self):
        with pytest.raises(ValueError):
            overflow_payload(b"abcde", 4, b"Z")
