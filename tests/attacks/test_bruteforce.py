"""Tests for the canary brute-force model (Eq. 6)."""

import pytest

from repro.attacks import (
    empirical_success_rate,
    expected_tries,
    first_order_probability,
    simulate_bruteforce,
    success_probability,
)
from repro.hardware.pac import PAC_BITS


class TestClosedForms:
    def test_expected_tries_is_2_to_the_bits(self):
        assert expected_tries(24) == 2**24
        assert expected_tries(8) == 256

    def test_first_order_matches_paper(self):
        # "1 in 16 million chance" for one canary at 24 bits
        p = first_order_probability(canaries=1, pac_bits=24)
        assert p == pytest.approx(1 / 16_777_216)

    def test_more_canaries_more_chances(self):
        assert first_order_probability(canaries=4) == pytest.approx(
            4 * first_order_probability(canaries=1)
        )

    def test_success_probability_monotone_in_attempts(self):
        p1 = success_probability(1, pac_bits=16)
        p2 = success_probability(1000, pac_bits=16)
        assert p2 > p1

    def test_success_probability_first_order_limit(self):
        assert success_probability(1, pac_bits=24) == pytest.approx(
            first_order_probability(1, 24), rel=1e-6
        )

    def test_success_probability_saturates(self):
        assert success_probability(10_000_000, pac_bits=8) == pytest.approx(1.0)

    def test_default_uses_hardware_width(self):
        assert success_probability(1) == pytest.approx(1 / (1 << PAC_BITS))


class TestSimulation:
    def test_deterministic(self):
        a = simulate_bruteforce(pac_bits=10, max_attempts=5000, seed=3)
        b = simulate_bruteforce(pac_bits=10, max_attempts=5000, seed=3)
        assert (a.attempts, a.succeeded) == (b.attempts, b.succeeded)

    def test_narrow_pac_breaks_quickly(self):
        outcome = simulate_bruteforce(pac_bits=4, max_attempts=2000, seed=5)
        assert outcome.succeeded
        assert outcome.attempts < 2000

    def test_wide_pac_resists(self):
        outcome = simulate_bruteforce(pac_bits=24, max_attempts=200, seed=5)
        assert not outcome.succeeded

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            simulate_bruteforce(pac_bits=0)
        with pytest.raises(ValueError):
            simulate_bruteforce(pac_bits=32)

    def test_empirical_rate_tracks_closed_form(self):
        # with 6-bit PACs one attempt succeeds with p = 1/64; over many
        # independent campaigns the rate should be within noise bounds
        rate = empirical_success_rate(pac_bits=6, trials=800, seed=17)
        expected = 1 / 64
        assert abs(rate - expected) < 4 * (expected * (1 - expected) / 800) ** 0.5 + 1e-3
