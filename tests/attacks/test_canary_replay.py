"""Leak-and-replay attacks against canaries (§4.4 re-randomisation).

The paper: "we re-randomize whenever the canary's neighbor stack
variable will be used by an input channel.  As a result, any value
extracted through a buffered read would be useless since the canary's
value had changed already."

These tests stage exactly that attacker: the first input channel leaks
the live canary bytes; the second replays them inside an overflow that
would otherwise be detected.  Without re-randomisation the replay
passes authentication and the branch bends; with it (the default), the
leaked value is stale and the trap fires.
"""

import pytest

from repro.attacks import AttackController
from repro.core import DefenseConfig, protect
from repro.frontend import compile_source
from repro.hardware import CPU

TWO_READS = """
int main() {
    char str[16];
    char user[16];
    strcpy(user, "guest");
    gets(str);                       // leak window (buffered read)
    gets(str);                       // the actual overflow
    if (strncmp(user, "admin", 5) == 0) {
        printf("SUPERUSER\\n");
        return 1;
    }
    printf("normal\\n");
    return 0;
}
"""


def _leak_and_replay_controller() -> AttackController:
    leaked = {}

    def leak(cpu) -> bytes:
        # After re-layout `str` is followed directly by its canary slot.
        base = cpu.stack_slot_address("str")
        leaked["canary"] = cpu.memory.read_bytes(base + 16, 8)
        return b"probe"  # harmless first input

    def replay(cpu) -> bytes:
        # Overflow through the canary, writing the leaked value back
        # unchanged, then land "admin" on `user`.
        return b"A" * 16 + leaked["canary"] + b"admin\x00"

    controller = AttackController()
    controller.add("gets", leak, occurrence=1)
    controller.add("gets", replay, occurrence=2)
    return controller


def _protect(rerandomize: bool):
    module = compile_source(TWO_READS)
    return protect(
        module,
        config=DefenseConfig(
            scheme="pythia", rerandomize_canaries=rerandomize
        ),
    )


class TestLeakAndReplay:
    def test_replay_bends_without_rerandomisation(self):
        result = _protect(rerandomize=False)
        outcome = CPU(result.module, attack=_leak_and_replay_controller()).run()
        assert outcome.ok
        assert b"SUPERUSER" in outcome.output  # the ablated scheme is bent

    def test_rerandomisation_defeats_replay(self):
        result = _protect(rerandomize=True)
        outcome = CPU(result.module, attack=_leak_and_replay_controller()).run()
        # the replayed value is *validly signed* (PA replay weakness), so
        # detection comes from the value compare: a canary trap
        assert outcome.status == "canary_trap"

    def test_naive_overflow_caught_either_way(self):
        """Without the leak, a plain overflow trips both variants."""
        for rerandomize in (False, True):
            result = _protect(rerandomize)
            attack = AttackController().add(
                "gets", b"A" * 16 + b"XXXXXXXX" + b"admin\x00", occurrence=2
            )
            outcome = CPU(result.module, attack=attack).run()
            assert outcome.status == "pac_trap", rerandomize

    def test_benign_unaffected_by_ablation(self):
        for rerandomize in (False, True):
            result = _protect(rerandomize)
            outcome = CPU(result.module).run(inputs=[b"a", b"b"])
            assert outcome.ok and b"normal" in outcome.output

    def test_rerandomisation_costs_pa_instructions(self):
        with_r = _protect(True)
        without = _protect(False)
        assert with_r.pa_static > without.pa_static
