"""Tests for the measurement layer (overhead, security, bounds)."""

import pytest

from repro.core import analyze_module, clone_module
from repro.frontend import compile_source
from repro.metrics import (
    attack_distance_row,
    branch_security_row,
    extract_bound_parameters,
    mean,
    measure_module,
    measure_program,
)
from repro.transforms import Mem2Reg
from repro.workloads import generate_program, get_profile
from tests.conftest import LISTING1_SOURCE


@pytest.fixture(scope="module")
def measurement():
    program = generate_program(get_profile("505.mcf_r"))
    return measure_program(program)


class TestOverheadMeasurement:
    def test_all_schemes_present(self, measurement):
        assert set(measurement.runs) == {"vanilla", "cpa", "pythia", "dfi"}

    def test_vanilla_overhead_is_zero(self, measurement):
        assert measurement.runtime_overhead("vanilla") == 0.0

    def test_instrumented_overheads_positive(self, measurement):
        for scheme in ("cpa", "pythia", "dfi"):
            assert measurement.runtime_overhead(scheme) > 0

    def test_pythia_cheaper_than_cpa(self, measurement):
        assert measurement.runtime_overhead("pythia") < measurement.runtime_overhead(
            "cpa"
        )

    def test_binary_increase_positive(self, measurement):
        assert measurement.binary_increase("cpa") > 0
        assert measurement.binary_increase("pythia") > 0

    def test_ipc_degradation_ordering(self, measurement):
        assert measurement.ipc_degradation("cpa") > measurement.ipc_degradation(
            "pythia"
        )

    def test_pa_counts(self, measurement):
        assert measurement.pa_static("cpa") > measurement.pa_static("pythia") > 0
        assert measurement.pa_dynamic("cpa") > measurement.pa_dynamic("pythia") > 0
        assert measurement.pa_static("dfi") == 0

    def test_missing_scheme_raises(self, measurement):
        with pytest.raises(KeyError):
            measurement.runtime_overhead("sgx")

    def test_failing_benign_run_raises(self):
        module = compile_source("int main() { int z = 0; return 1 / z; }")
        with pytest.raises(RuntimeError):
            measure_module(module, "divzero", schemes=("vanilla",))

    def test_mean_helper(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0


class TestSecurityRows:
    def test_branch_security_row(self, listing1_module):
        row = branch_security_row(listing1_module, "listing1")
        assert row.total_branches >= 1
        assert 0 <= row.dfi_secured <= row.pythia_secured <= 1.0

    def test_attack_distance_row(self, listing1_module):
        row = attack_distance_row(listing1_module, "listing1")
        assert row.affected_branches >= 1
        assert row.pythia_distance >= row.dfi_distance
        assert row.pythia_exceeds_ic

    def test_rows_do_not_mutate_module(self, listing1_module):
        from repro.ir import print_module

        before = print_module(listing1_module)
        branch_security_row(listing1_module, "x")
        attack_distance_row(listing1_module, "x")
        assert print_module(listing1_module) == before


class TestBounds:
    def _params(self, source):
        module = compile_source(source)
        Mem2Reg().run(module)
        return extract_bound_parameters(module), module

    def test_parameters_extracted(self):
        params, module = self._params(LISTING1_SOURCE)
        assert params.branches >= 1
        assert params.vulnerable >= params.refined >= 1
        assert params.mean_uses > 0

    def test_conservative_bound_dominates(self):
        params, _ = self._params(LISTING1_SOURCE)
        assert params.conservative_bound() >= params.pythia_simplified_bound()

    def test_bounds_cover_measured_pa(self):
        from repro.core import protect

        params, module = self._params(LISTING1_SOURCE)
        cpa = protect(module, scheme="cpa")
        pythia = protect(module, scheme="pythia")
        assert cpa.pa_static <= params.conservative_bound()
        assert pythia.pa_static <= params.pythia_bound() + params.branches

    def test_refinement_factor(self):
        params, _ = self._params(LISTING1_SOURCE)
        assert params.refinement_factor() >= 1.0
