"""Invariants every overhead measurement must satisfy.

These pin the *shape* of the paper's numbers rather than their values:
fractions stay fractions, the vanilla baseline costs nothing relative
to itself, and derived ratios agree with their inputs.
"""

from __future__ import annotations

import pytest

from repro.core.config import SCHEMES
from repro.metrics import measure_program
from repro.workloads import generate_program, get_profile

PROFILES = ("505.mcf_r", "519.lbm_r", "nginx")


@pytest.fixture(scope="module", params=PROFILES)
def measurement(request):
    program = generate_program(get_profile(request.param))
    return measure_program(program)


def test_vanilla_overhead_is_exactly_zero(measurement):
    assert measurement.runtime_overhead("vanilla") == 0.0
    assert measurement.binary_increase("vanilla") == 0.0
    assert measurement.ipc_degradation("vanilla") == 0.0


@pytest.mark.parametrize("scheme", SCHEMES)
def test_pa_executed_fraction_is_a_fraction(measurement, scheme):
    fraction = measurement.pa_executed_fraction(scheme)
    assert 0.0 <= fraction <= 1.0


@pytest.mark.parametrize("scheme", SCHEMES)
def test_instrumented_schemes_never_run_faster(measurement, scheme):
    # instrumentation only adds instructions; cycles are deterministic
    assert measurement.runtime_overhead(scheme) >= 0.0


def test_vanilla_has_no_pa_instructions(measurement):
    assert measurement.pa_static("vanilla") == 0
    assert measurement.pa_dynamic("vanilla") == 0
    assert measurement.pa_executed_fraction("vanilla") == 0.0


@pytest.mark.parametrize("scheme", SCHEMES)
def test_overhead_matches_raw_cycles(measurement, scheme):
    base = measurement.runs["vanilla"].execution.cycles
    inst = measurement.runs[scheme].execution.cycles
    assert measurement.runtime_overhead(scheme) == pytest.approx(
        inst / base - 1.0
    )
