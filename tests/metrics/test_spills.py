"""Tests for the spill PA accounting (§5 machine pass, §6.2 example)."""

import pytest

from repro.frontend import compile_source
from repro.metrics.spills import (
    AARCH64_REGISTERS,
    cpa_spill_pa,
    estimate_spills,
    pythia_spill_pa,
)
from repro.transforms import Mem2Reg


class TestClosedForms:
    def test_paper_example_spilled_twice(self):
        # "7 PA instructions (4 encrypts and 3 decrypts)" vs "only 4"
        assert cpa_spill_pa(2) == 7
        assert pythia_spill_pa(2, ic_uses=1) == 3 + 1  # 3 encrypts + 1 decrypt

    def test_cpa_baseline_no_spills(self):
        assert cpa_spill_pa(0) == 3  # sign + use auth + store sign

    def test_cpa_grows_linearly(self):
        assert cpa_spill_pa(5) - cpa_spill_pa(4) == 2

    def test_pythia_immune_to_spills(self):
        assert pythia_spill_pa(0) == pythia_spill_pa(10)

    def test_pythia_scales_with_ic_uses(self):
        assert pythia_spill_pa(0, ic_uses=3) == 10

    def test_pythia_cheaper_once_spills_accumulate(self):
        assert pythia_spill_pa(3, ic_uses=1) < cpa_spill_pa(3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cpa_spill_pa(-1)
        with pytest.raises(ValueError):
            pythia_spill_pa(0, ic_uses=-2)


class TestEstimate:
    def test_small_function_no_spills(self):
        module = compile_source("int main() { return 1 + 2; }")
        Mem2Reg().run(module)
        estimate = estimate_spills(module)
        assert estimate.spilled_values == 0
        assert estimate.cpa_extra_pa == 0

    def test_pressure_heavy_function_spills(self):
        decls = " ".join(f"int v{i} = x + {i};" for i in range(40))
        total = " + ".join(f"v{i}" for i in range(40))
        source = (
            "int main() { int x = 0; scanf(\"%d\", &x); "
            + decls
            + " int s = 0; if (v0 > 0) { s = "
            + total
            + "; } return s; }"
        )
        module = compile_source(source)
        Mem2Reg().run(module)
        estimate = estimate_spills(module)
        assert estimate.peak_pressure > AARCH64_REGISTERS
        assert estimate.spilled_values > 0
        assert estimate.cpa_extra_pa == 2 * estimate.spilled_values
        assert estimate.pythia_extra_pa == 0

    def test_tighter_register_file_spills_more(self):
        module = compile_source(
            "int main() { int a = 1; int b = 2; int c = a + b; return c * a; }"
        )
        Mem2Reg().run(module)
        wide = estimate_spills(module, registers=28)
        narrow = estimate_spills(module, registers=0)
        assert narrow.spilled_values >= wide.spilled_values
        assert narrow.spilled_values == narrow.peak_pressure
