"""Tests for MiniC semantic analysis."""

import pytest

from repro.frontend.parser import parse_source
from repro.frontend.sema import Sema, SemaError
from repro.ir import I64, I8, PointerType


def analyze(source):
    return Sema(parse_source(source)).analyze()


def expect_error(source, fragment):
    with pytest.raises(SemaError) as err:
        analyze(source)
    assert fragment in str(err.value)


class TestNameResolution:
    def test_undeclared_identifier(self):
        expect_error("int main() { return x; }", "undeclared")

    def test_redeclaration_same_scope(self):
        expect_error("int main() { int x; int x; return 0; }", "redeclaration")

    def test_shadowing_in_inner_scope_allowed(self):
        analyze("int main() { int x = 1; { int x = 2; } return x; }")

    def test_for_scope(self):
        analyze("int main() { for (int i = 0; i < 2; i = i + 1) { } return 0; }")
        expect_error(
            "int main() { for (int i = 0; i < 2; i = i + 1) { } return i; }",
            "undeclared",
        )

    def test_global_visible_in_function(self):
        analyze("int g;\nint main() { return g; }")

    def test_params_visible(self):
        analyze("int f(int a) { return a; }")

    def test_unknown_function(self):
        expect_error("int main() { return frob(); }", "unknown function")

    def test_library_functions_resolve(self):
        info = analyze('int main() { return strlen("x"); }')
        assert "strlen" in info.used_library

    def test_function_redefinition(self):
        expect_error("int f() { return 0; }\nint f() { return 1; }", "redefinition")


class TestTypes:
    def test_unknown_struct(self):
        expect_error("int main() { struct nope s; return 0; }", "unknown struct")

    def test_struct_redefinition(self):
        expect_error(
            "struct s { int x; };\nstruct s { int y; };", "redefinition of struct"
        )

    def test_void_variable(self):
        expect_error("int main() { void v; return 0; }", "void type")

    def test_expression_types_recorded(self):
        source = "int main() { int x = 1; char c = 'a'; return x; }"
        program = parse_source(source)
        info = Sema(program).analyze()
        ret = program.functions[0].body[-1]
        assert info.type_of(ret.value) == I64

    def test_string_literal_is_char_pointer(self):
        program = parse_source('int main() { char *s = "x"; return 0; }')
        info = Sema(program).analyze()
        decl = program.functions[0].body[0]
        assert info.type_of(decl.initializer) == PointerType(I8)

    def test_deref_non_pointer(self):
        expect_error("int main() { int x; return *x; }", "dereference of non-pointer")

    def test_address_of_non_lvalue(self):
        expect_error("int main() { return &(1 + 2) == NULL; }", "address of non-lvalue")

    def test_index_non_array(self):
        expect_error("int main() { int x; return x[0]; }", "indexing")

    def test_field_on_non_struct(self):
        expect_error("int main() { int x; return x.y; }", "non-struct")

    def test_arrow_on_non_pointer(self):
        expect_error(
            "struct s { int x; };\nint main() { struct s v; return v->x; }",
            "-> on non-pointer",
        )

    def test_unknown_field(self):
        with pytest.raises(KeyError):
            analyze("struct s { int x; };\nint main() { struct s v; return v.y; }")

    def test_pointer_plus_int_ok(self):
        analyze("int main() { int a[4]; int *p; p = a; p = p + 1; return 0; }")

    def test_pointer_minus_pointer_ok(self):
        analyze("int main() { int a[4]; int *p; int *q; p = a; q = a; return p - q; }")

    def test_pointer_plus_pointer_rejected(self):
        expect_error(
            "int main() { int a[2]; int *p; int *q; p = a; q = a; return (p + q) == NULL; }",
            "invalid operands",
        )


class TestAssignments:
    def test_assign_to_literal(self):
        expect_error("int main() { 3 = 4; return 0; }", "non-lvalue")

    def test_assign_to_array(self):
        expect_error(
            "int main() { int a[2]; int b[2]; a = b; return 0; }",
            "assignment to array",
        )

    def test_int_char_interconvert(self):
        analyze("int main() { char c = 65; int x = c; return x; }")

    def test_pointer_conversions_allowed(self):
        analyze("int main() { char *c; int *p; p = malloc(8); c = p; return 0; }")


class TestCalls:
    def test_arity_mismatch(self):
        expect_error(
            "int f(int a) { return a; }\nint main() { return f(); }", "expects 1"
        )

    def test_too_many_args(self):
        expect_error(
            "int f(int a) { return a; }\nint main() { return f(1, 2); }", "expects 1"
        )

    def test_varargs_allows_extra(self):
        analyze('int main() { printf("%d %d", 1, 2); return 0; }')

    def test_arg_types_checked(self):
        expect_error(
            "struct s { int x; };\n"
            "int f(int a) { return a; }\n"
            "int main() { struct s v; return f(v); }",
            "cannot convert",
        )


class TestReturnsAndLoops:
    def test_return_without_value(self):
        expect_error("int main() { return; }", "return without value")

    def test_return_value_in_void(self):
        expect_error("void f() { return 3; }\nint main() { return 0; }", "void function")

    def test_break_outside_loop(self):
        expect_error("int main() { break; return 0; }", "outside a loop")

    def test_continue_outside_loop(self):
        expect_error("int main() { continue; return 0; }", "outside a loop")

    def test_break_in_loop_ok(self):
        analyze("int main() { while (1) { break; } return 0; }")
