"""Tests for the MiniC parser (AST shapes and precedence)."""

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend.parser import ParseError, parse_source


def parse_expr(text: str) -> ast.Expr:
    program = parse_source(f"int main() {{ return {text}; }}")
    stmt = program.functions[0].body[0]
    assert isinstance(stmt, ast.ReturnStmt)
    return stmt.value


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.BinaryOp) and e.op == "+"
        assert isinstance(e.right, ast.BinaryOp) and e.right.op == "*"

    def test_comparison_below_arith(self):
        e = parse_expr("a + 1 < b * 2")
        assert e.op == "<"

    def test_logical_lowest(self):
        e = parse_expr("a < b && c < d")
        assert e.op == "&&"

    def test_or_below_and(self):
        e = parse_expr("a && b || c")
        assert e.op == "||"
        assert e.left.op == "&&"

    def test_parentheses_override(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_left_associativity(self):
        e = parse_expr("10 - 3 - 2")
        assert e.op == "-"
        assert isinstance(e.left, ast.BinaryOp) and e.left.op == "-"

    def test_shift_between_add_and_compare(self):
        e = parse_expr("1 + 2 << 3")
        assert e.op == "<<"


class TestUnaryPostfix:
    def test_deref_and_addr(self):
        assert parse_expr("*p").op == "*"
        assert parse_expr("&x").op == "&"

    def test_nested_unary(self):
        e = parse_expr("**pp")
        assert e.op == "*" and e.operand.op == "*"

    def test_index_chain(self):
        e = parse_expr("m[1][2]")
        assert isinstance(e, ast.IndexExpr)
        assert isinstance(e.base, ast.IndexExpr)

    def test_field_and_arrow(self):
        dot = parse_expr("s.x")
        arrow = parse_expr("p->x")
        assert isinstance(dot, ast.FieldExpr) and not dot.arrow
        assert isinstance(arrow, ast.FieldExpr) and arrow.arrow

    def test_call_with_args(self):
        e = parse_expr("f(1, g(2), x)")
        assert isinstance(e, ast.CallExpr)
        assert len(e.args) == 3
        assert isinstance(e.args[1], ast.CallExpr)

    def test_sizeof(self):
        e = parse_expr("sizeof(int)")
        assert isinstance(e, ast.SizeofExpr)
        assert e.type_ref.base == "int"

    def test_assignment_right_associative(self):
        program = parse_source("int main() { a = b = 1; return 0; }")
        stmt = program.functions[0].body[0]
        assert isinstance(stmt.expr, ast.Assignment)
        assert isinstance(stmt.expr.value, ast.Assignment)


class TestDeclarations:
    def test_global(self):
        program = parse_source("int g = 5;")
        assert program.globals[0].name == "g"
        assert program.globals[0].initializer.value == 5

    def test_global_array(self):
        program = parse_source("char buf[32];")
        assert program.globals[0].type_ref.array_dims == (32,)

    def test_pointer_types(self):
        program = parse_source("int **pp;")
        assert program.globals[0].type_ref.pointer_depth == 2

    def test_struct_definition(self):
        program = parse_source("struct p { int x; int y; };")
        struct = program.structs[0]
        assert struct.name == "p"
        assert [f.name for f in struct.fields] == ["x", "y"]

    def test_struct_variable_vs_definition(self):
        program = parse_source(
            "struct p { int x; };\nint main() { struct p v; v.x = 1; return v.x; }"
        )
        assert len(program.structs) == 1
        assert len(program.functions) == 1

    def test_function_params(self):
        program = parse_source("int f(int a, char *b) { return a; }")
        params = program.functions[0].params
        assert params[0].name == "a"
        assert params[1].type_ref.pointer_depth == 1

    def test_array_param_decays(self):
        program = parse_source("int f(int a[10]) { return a[0]; }")
        assert program.functions[0].params[0].type_ref.pointer_depth == 1

    def test_void_function(self):
        program = parse_source("void f(void) { return; }")
        assert program.functions[0].params == []


class TestStatements:
    def test_if_else(self):
        program = parse_source(
            "int main() { if (1) { return 1; } else { return 2; } }"
        )
        stmt = program.functions[0].body[0]
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.else_body

    def test_if_without_braces(self):
        program = parse_source("int main() { if (1) return 1; return 0; }")
        assert isinstance(program.functions[0].body[0], ast.IfStmt)

    def test_while(self):
        program = parse_source("int main() { while (1) { break; } return 0; }")
        stmt = program.functions[0].body[0]
        assert isinstance(stmt, ast.WhileStmt)
        assert isinstance(stmt.body[0], ast.BreakStmt)

    def test_for_full(self):
        program = parse_source(
            "int main() { int i; for (i = 0; i < 3; i = i + 1) { continue; } return 0; }"
        )
        stmt = program.functions[0].body[1]
        assert isinstance(stmt, ast.ForStmt)
        assert stmt.init and stmt.condition and stmt.step

    def test_for_with_decl(self):
        program = parse_source("int main() { for (int i = 0; i < 3; i = i + 1) { } return 0; }")
        stmt = program.functions[0].body[0]
        assert isinstance(stmt.init, ast.DeclStmt)

    def test_for_empty_clauses(self):
        program = parse_source("int main() { for (;;) { break; } return 0; }")
        stmt = program.functions[0].body[0]
        assert stmt.init is None and stmt.condition is None and stmt.step is None

    def test_nested_blocks(self):
        program = parse_source("int main() { { int x = 1; } return 0; }")
        assert isinstance(program.functions[0].body[0], ast.BlockStmt)


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "int main() { return 1 + ; }",
            "int main() { if 1 { } }",
            "int main( { }",
            "int main() { int; }",
            "int main() { return 0 }",
            "struct { int x; };",
        ],
    )
    def test_syntax_errors(self, source):
        with pytest.raises(ParseError):
            parse_source(source)
