"""Tests for the MiniC extensions: compound assignment, ternary, do-while."""

import pytest

from repro.frontend import compile_source
from repro.frontend.parser import ParseError, parse_source
from repro.frontend.sema import SemaError
from repro.ir import verify_module
from tests.conftest import run_minic


class TestCompoundAssignment:
    @pytest.mark.parametrize(
        "op,start,rhs,expected",
        [
            ("+=", 10, 5, 15),
            ("-=", 10, 3, 7),
            ("*=", 10, 4, 40),
            ("/=", 10, 3, 3),
            ("%=", 10, 3, 1),
        ],
    )
    def test_semantics(self, op, start, rhs, expected):
        source = f"int main() {{ int a = {start}; a {op} {rhs}; return a; }}"
        assert run_minic(source).return_value == expected

    def test_on_array_element(self):
        source = "int main() { int a[2]; a[0] = 5; a[0] += 2; return a[0]; }"
        assert run_minic(source).return_value == 7

    def test_on_struct_field(self):
        source = """
        struct p { int x; };
        int main() { struct p v; v.x = 1; v.x *= 6; return v.x; }
        """
        assert run_minic(source).return_value == 6

    def test_chains_with_expression_rhs(self):
        source = "int main() { int a = 1; int b = 2; a += b * 3; return a; }"
        assert run_minic(source).return_value == 7

    def test_non_lvalue_rejected(self):
        with pytest.raises(SemaError):
            compile_source("int main() { 3 += 4; return 0; }")


class TestTernary:
    def test_both_arms(self):
        assert run_minic("int main() { return 1 ? 10 : 20; }").return_value == 10
        assert run_minic("int main() { return 0 ? 10 : 20; }").return_value == 20

    def test_condition_expression(self):
        source = "int main() { int x = 7; return x > 5 ? x * 2 : x; }"
        assert run_minic(source).return_value == 14

    def test_arms_short_circuit(self):
        source = """
        int g = 0;
        int bump() { g += 1; return 9; }
        int main() { int x = 1 ? 5 : bump(); return g * 10 + x; }
        """
        assert run_minic(source).return_value == 5

    def test_nested(self):
        source = "int main() { int x = 2; return x == 1 ? 10 : x == 2 ? 20 : 30; }"
        assert run_minic(source).return_value == 20

    def test_in_call_argument(self):
        source = 'int main() { printf("%d", 1 < 2 ? 1 : 0); return 0; }'
        assert run_minic(source).output == b"1"

    def test_pointer_arms(self):
        source = """
        int main() {
            int a = 1; int b = 2;
            int *p;
            p = a > 0 ? &a : &b;
            return *p;
        }
        """
        assert run_minic(source).return_value == 1

    def test_char_arm_promoted(self):
        source = "int main() { char c = 'A'; return 1 ? c : 0; }"
        assert run_minic(source).return_value == 65

    def test_missing_colon_rejected(self):
        with pytest.raises(ParseError):
            parse_source("int main() { return 1 ? 2; }")


class TestDoWhile:
    def test_runs_at_least_once(self):
        source = """
        int main() {
            int n = 0;
            do { n += 1; } while (0);
            return n;
        }
        """
        assert run_minic(source).return_value == 1

    def test_loops_until_false(self):
        source = """
        int main() {
            int n = 0; int t = 0;
            do { t += n; n += 1; } while (n < 5);
            return t;
        }
        """
        assert run_minic(source).return_value == 10

    def test_break_and_continue(self):
        source = """
        int main() {
            int n = 0; int t = 0;
            do {
                n += 1;
                if (n == 2) { continue; }
                if (n == 5) { break; }
                t += n;
            } while (n < 100);
            return t;   // 1 + 3 + 4
        }
        """
        assert run_minic(source).return_value == 8

    def test_requires_trailing_semicolon(self):
        with pytest.raises(ParseError):
            parse_source("int main() { do { } while (1) return 0; }")

    def test_verifies_and_roundtrips(self):
        from repro.ir import parse_module, print_module

        module = compile_source(
            "int main() { int n = 3; do { n -= 1; } while (n > 0); return n; }"
        )
        verify_module(module)
        reparsed = parse_module(print_module(module))
        verify_module(reparsed)

    def test_schemes_transparent(self):
        from repro.core import protect_all
        from repro.hardware import CPU

        source = """
        int main() {
            char buf[8];
            int n = 0;
            do { gets(buf); n += 1; } while (n < 2);
            return n;
        }
        """
        module = compile_source(source)
        for scheme, result in protect_all(module).items():
            outcome = CPU(result.module).run(inputs=[b"a", b"b"])
            assert outcome.ok and outcome.return_value == 2, scheme
