"""Codegen tests: MiniC semantics verified by execution."""

import pytest

from repro.frontend import compile_source
from repro.ir import verify_module
from tests.conftest import run_minic


class TestControlFlow:
    def test_if_both_arms(self):
        source = """
        int pick(int x) {
            if (x > 0) { return 1; } else { return 2; }
        }
        int main() { return pick(5) * 10 + pick(-5); }
        """
        assert run_minic(source).return_value == 12

    def test_if_without_else(self):
        source = "int main() { int x = 1; if (x) { x = 5; } return x; }"
        assert run_minic(source).return_value == 5

    def test_nested_if(self):
        source = """
        int main() {
            int a = 1; int b = 0;
            if (a) { if (b) { return 1; } else { return 2; } }
            return 3;
        }
        """
        assert run_minic(source).return_value == 2

    def test_while_loop(self):
        source = """
        int main() {
            int n = 0; int total = 0;
            while (n < 5) { total = total + n; n = n + 1; }
            return total;
        }
        """
        assert run_minic(source).return_value == 10

    def test_for_loop(self):
        source = """
        int main() {
            int total = 0;
            for (int i = 1; i <= 4; i = i + 1) { total = total + i; }
            return total;
        }
        """
        assert run_minic(source).return_value == 10

    def test_break(self):
        source = """
        int main() {
            int i;
            for (i = 0; i < 100; i = i + 1) { if (i == 7) { break; } }
            return i;
        }
        """
        assert run_minic(source).return_value == 7

    def test_continue(self):
        source = """
        int main() {
            int total = 0;
            for (int i = 0; i < 6; i = i + 1) {
                if (i % 2) { continue; }
                total = total + i;
            }
            return total;
        }
        """
        assert run_minic(source).return_value == 6

    def test_both_arms_return(self):
        source = "int main() { if (1) { return 4; } else { return 5; } }"
        assert run_minic(source).return_value == 4

    def test_missing_return_defaults_zero(self):
        assert run_minic("int main() { int x = 3; }").return_value == 0


class TestShortCircuit:
    def test_and_skips_rhs(self):
        source = """
        int g = 0;
        int bump() { g = g + 1; return 1; }
        int main() { int r = 0 && bump(); return g * 10 + r; }
        """
        assert run_minic(source).return_value == 0

    def test_and_evaluates_rhs(self):
        source = """
        int g = 0;
        int bump() { g = g + 1; return 1; }
        int main() { int r = 1 && bump(); return g * 10 + r; }
        """
        assert run_minic(source).return_value == 11

    def test_or_skips_rhs(self):
        source = """
        int g = 0;
        int bump() { g = g + 1; return 0; }
        int main() { int r = 1 || bump(); return g * 10 + r; }
        """
        assert run_minic(source).return_value == 1

    def test_or_evaluates_rhs(self):
        source = """
        int g = 0;
        int bump() { g = g + 1; return 0; }
        int main() { int r = 0 || bump(); return g * 10 + r; }
        """
        assert run_minic(source).return_value == 10

    def test_not(self):
        assert run_minic("int main() { return !0 * 10 + !5; }").return_value == 10


class TestPointersArrays:
    def test_array_write_read(self):
        source = """
        int main() {
            int a[4];
            for (int i = 0; i < 4; i = i + 1) { a[i] = i * i; }
            return a[3];
        }
        """
        assert run_minic(source).return_value == 9

    def test_pointer_deref(self):
        source = "int main() { int x = 5; int *p; p = &x; *p = 9; return x; }"
        assert run_minic(source).return_value == 9

    def test_array_decay_to_pointer(self):
        source = """
        int sum(int *v, int n) {
            int t = 0;
            for (int i = 0; i < n; i = i + 1) { t = t + v[i]; }
            return t;
        }
        int main() { int a[3]; a[0]=1; a[1]=2; a[2]=3; return sum(a, 3); }
        """
        assert run_minic(source).return_value == 6

    def test_pointer_arithmetic(self):
        source = """
        int main() {
            int a[4];
            a[2] = 42;
            int *p;
            p = a;
            p = p + 2;
            return *p;
        }
        """
        assert run_minic(source).return_value == 42

    def test_pointer_difference(self):
        source = """
        int main() {
            int a[8];
            int *p; int *q;
            p = a; q = p + 5;
            return q - p;
        }
        """
        assert run_minic(source).return_value == 5

    def test_char_array_byte_semantics(self):
        source = """
        int main() {
            char b[4];
            b[0] = 255 + 2;    // truncated to i8
            return b[0];
        }
        """
        assert run_minic(source).return_value == 1

    def test_char_sign_extension(self):
        source = "int main() { char c = 200; int x = c; return x < 0; }"
        assert run_minic(source).return_value == 1

    def test_double_pointer(self):
        source = """
        int main() {
            int x = 7;
            int *p; int **pp;
            p = &x; pp = &p;
            **pp = 11;
            return x;
        }
        """
        assert run_minic(source).return_value == 11


class TestStructs:
    def test_field_assignment(self):
        source = """
        struct pt { int x; int y; };
        int main() {
            struct pt p;
            p.x = 30; p.y = 12;
            return p.x + p.y;
        }
        """
        assert run_minic(source).return_value == 42

    def test_arrow_through_pointer(self):
        source = """
        struct pt { int x; int y; };
        int main() {
            struct pt p;
            struct pt *q;
            q = &p;
            q->x = 5;
            return p.x;
        }
        """
        assert run_minic(source).return_value == 5

    def test_struct_with_array_field(self):
        source = """
        struct buf { int len; char data[8]; };
        int main() {
            struct buf b;
            b.len = 2;
            b.data[0] = 65;
            return b.data[0] + b.len;
        }
        """
        assert run_minic(source).return_value == 67

    def test_sizeof_struct(self):
        source = """
        struct mixed { char c; int x; };
        int main() { return sizeof(struct mixed); }
        """
        assert run_minic(source).return_value == 16


class TestFunctions:
    def test_mutual_recursion(self):
        source = """
        int is_odd(int n);
        """  # forward decls unsupported; use ordering instead
        source = """
        int is_even(int n) {
            if (n == 0) { return 1; }
            return is_odd(n - 1);
        }
        int is_odd(int n) {
            if (n == 0) { return 0; }
            return is_even(n - 1);
        }
        int main() { return is_even(10) * 10 + is_odd(10); }
        """
        assert run_minic(source).return_value == 10

    def test_call_before_definition(self):
        source = """
        int main() { return later(4); }
        int later(int x) { return x * 2; }
        """
        assert run_minic(source).return_value == 8

    def test_void_function_call(self):
        source = """
        int g = 0;
        void set(int v) { g = v; }
        int main() { set(9); return g; }
        """
        assert run_minic(source).return_value == 9

    def test_params_are_mutable_locals(self):
        source = """
        int f(int a) { a = a + 1; return a; }
        int main() { int x = 5; f(x); return x; }
        """
        assert run_minic(source).return_value == 5  # pass by value

    def test_unreachable_code_after_return_dropped(self):
        module = compile_source("int main() { return 1; return 2; }")
        verify_module(module)
        assert run_minic("int main() { return 1; return 2; }").return_value == 1
