"""Tests for the MiniC lexer."""

import pytest

from repro.frontend.lexer import LexError, Token, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        assert kinds("int x")[0] == ("keyword", "int")
        assert kinds("int x")[1] == ("ident", "x")
        assert kinds("integer")[0] == ("ident", "integer")

    def test_numbers(self):
        assert kinds("42")[0] == ("number", "42")
        assert kinds("0x1F")[0] == ("number", "0x1F")

    def test_operators_maximal_munch(self):
        assert [t for _, t in kinds("a <= b")] == ["a", "<=", "b"]
        assert [t for _, t in kinds("a < = b")] == ["a", "<", "=", "b"]
        assert [t for _, t in kinds("p->x")] == ["p", "->", "x"]
        assert [t for _, t in kinds("a >> 2")] == ["a", ">>", "2"]

    def test_logical_operators(self):
        assert [t for _, t in kinds("a && b || !c")] == ["a", "&&", "b", "||", "!", "c"]

    def test_string_literal(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind == "string"
        assert tokens[0].text == "hello world"

    def test_string_escapes(self):
        assert tokenize(r'"a\nb\tc\0"')[0].text == "a\nb\tc\0"
        assert tokenize(r'"say \"hi\""')[0].text == 'say "hi"'

    def test_char_literal(self):
        assert tokenize("'a'")[0].text == "a"
        assert tokenize(r"'\n'")[0].text == "\n"

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")


class TestPositions:
    def test_line_tracking(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3

    def test_error_position(self):
        with pytest.raises(LexError) as err:
            tokenize("ok\n  $")
        assert err.value.line == 2


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"never')

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'ab")
