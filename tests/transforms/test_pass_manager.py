"""Tests for the pass manager."""

import pytest

from repro.frontend import compile_source
from repro.ir import VerificationError, Ret
from repro.transforms import Mem2Reg, PassManager


class _BreakingPass:
    """A deliberately broken pass that removes a terminator."""

    name = "breaker"

    def run(self, module):
        main = module.get_function("main")
        main.entry_block.instructions = [
            i for i in main.entry_block.instructions if not isinstance(i, Ret)
        ]
        return {}


class _CountingPass:
    name = "counter"

    def __init__(self):
        self.runs = 0

    def run(self, module):
        self.runs += 1
        return {"runs": self.runs}


class TestPassManager:
    def test_runs_in_order_and_collects_stats(self):
        module = compile_source("int main() { int x = 3; return x; }")
        counter = _CountingPass()
        manager = PassManager([Mem2Reg(), counter])
        stats = manager.run(module)
        assert "mem2reg" in stats and stats["counter"] == {"runs": 1}

    def test_verification_after_each_pass(self):
        module = compile_source("int main() { return 0; }")
        manager = PassManager([_BreakingPass()])
        with pytest.raises(VerificationError):
            manager.run(module)

    def test_verification_can_be_disabled(self):
        module = compile_source("int main() { return 0; }")
        manager = PassManager([_BreakingPass()], verify=False)
        manager.run(module)  # no exception

    def test_broken_input_caught_before_passes(self):
        module = compile_source("int main() { return 0; }")
        _BreakingPass().run(module)
        with pytest.raises(VerificationError):
            PassManager([_CountingPass()]).run(module)
