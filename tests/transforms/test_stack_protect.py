"""Tests for Pythia's stack re-layout and canaries (Algorithm 3)."""

import pytest

from repro.attacks import AttackController, overflow_payload
from repro.core import protect
from repro.frontend import compile_source
from repro.hardware import CPU
from repro.ir import Alloca, Call, verify_module
from tests.conftest import LISTING1_SOURCE


def pythia_protect(source):
    return protect(compile_source(source), scheme="pythia")


class TestRelayout:
    def test_vulnerable_vars_moved_to_frame_top(self):
        source = """
        int main() {
            char incoming[16];
            int counter = 0;
            int table[4];
            table[0] = 1;
            gets(incoming);
            if (table[0] > 0) { counter = 1; }
            return counter;
        }
        """
        result = pythia_protect(source)
        main = result.module.get_function("main")
        order = [a.name for a in main.allocas()]
        # `incoming` (IC destination) must come after the safe variables
        assert order.index("incoming") > order.index("table")
        # and its canary must directly follow it
        assert order[order.index("incoming") + 1].startswith("canary")

    def test_canary_inserted_per_vulnerable_variable(self, listing1_module):
        result = protect(listing1_module, scheme="pythia")
        stats = result.pass_stats["pythia-stack"]
        assert stats["canaries"] >= 2  # str and user are both IC destinations
        verify_module(result.module)

    def test_canary_initialised_with_random_and_sign(self, listing1_module):
        result = protect(listing1_module, scheme="pythia")
        access = result.module.get_function("access_check")
        random_calls = [
            i
            for i in access.instructions()
            if isinstance(i, Call) and i.callee.name == "pythia_random"
        ]
        assert random_calls
        assert result.pass_stats["pythia-stack"]["pa_sign_inserted"] > 0

    def test_no_vulnerable_vars_no_changes(self):
        result = pythia_protect("int main() { int x = 1; return x + 1; }")
        assert result.pass_stats["pythia-stack"]["canaries"] == 0
        assert result.pa_static == 0


class TestDetection:
    def test_overflow_detected_after_ic(self):
        result = pythia_protect(LISTING1_SOURCE)
        attack = AttackController().add(
            "gets", overflow_payload(b"", 16, b"admin\x00")
        )
        outcome = CPU(result.module, attack=attack).run()
        assert outcome.status == "pac_trap"

    def test_exact_fit_write_not_flagged(self):
        # a payload that stays inside the buffer never crosses the canary
        result = pythia_protect(LISTING1_SOURCE)
        attack = AttackController().add("gets", b"A" * 15)
        outcome = CPU(result.module, attack=attack).run()
        assert outcome.ok

    def test_nul_only_overflow_is_harmless(self):
        # 16 chars + terminator: the NUL lands on the canary's low byte,
        # which is zero by construction (terminator canary) -- no change,
        # no trap, and nothing useful written for the attacker either.
        result = pythia_protect(LISTING1_SOURCE)
        attack = AttackController().add("gets", b"A" * 16)
        outcome = CPU(result.module, attack=attack).run()
        assert outcome.ok

    def test_one_byte_overflow_detected(self):
        # a 17th payload byte actually changes the canary
        result = pythia_protect(LISTING1_SOURCE)
        attack = AttackController().add("gets", b"A" * 17)
        outcome = CPU(result.module, attack=attack).run()
        assert outcome.status == "pac_trap"

    def test_interprocedural_check(self):
        source = """
        void reader(char *dst) { gets(dst); }
        int main() {
            char box[8];
            int flags[2];
            flags[0] = 0;
            reader(box);
            if (flags[0] != 0) { return 1; }
            return 0;
        }
        """
        result = pythia_protect(source)
        stats = result.pass_stats["pythia-stack"]
        # the callee is recognised as a dispatcher, so the check lands at
        # the call site either as a direct IC check or an interprocedural one
        assert stats["ic_checks"] + stats["interprocedural_checks"] >= 1
        attack = AttackController().add(
            "gets", overflow_payload(b"", 8, (1).to_bytes(8, "little") * 2)
        )
        outcome = CPU(result.module, attack=attack).run()
        assert outcome.status == "pac_trap"


class TestRerandomisation:
    def test_canary_rerandomised_before_each_ic(self):
        source = """
        int main() {
            char buf[8];
            gets(buf);
            gets(buf);
            return 0;
        }
        """
        result = pythia_protect(source)
        main = result.module.get_function("main")
        random_calls = [
            i
            for i in main.instructions()
            if isinstance(i, Call) and i.callee.name == "pythia_random"
        ]
        # one init + one re-randomisation per IC use
        assert len(random_calls) >= 3

    def test_benign_reruns_get_fresh_canaries(self, listing1_module):
        result = protect(listing1_module, scheme="pythia")
        a = CPU(result.module, seed=1).run(inputs=[b"x"])
        b = CPU(result.module, seed=2).run(inputs=[b"x"])
        assert a.ok and b.ok
        assert a.return_value == b.return_value


class TestTransparency:
    @pytest.mark.parametrize("inputs,expected", [([b"hi"], 0), ([b""], 0)])
    def test_benign_behaviour_preserved(self, inputs, expected):
        vanilla = protect(compile_source(LISTING1_SOURCE), scheme="vanilla")
        pythia = protect(compile_source(LISTING1_SOURCE), scheme="pythia")
        rv = CPU(vanilla.module).run(inputs=list(inputs))
        rp = CPU(pythia.module).run(inputs=list(inputs))
        assert rv.ok and rp.ok
        assert rv.return_value == rp.return_value == expected
        assert rv.output == rp.output

    def test_cheaper_than_cpa_on_hot_code(self):
        # CPA authenticates every use inside the hot loop; Pythia only
        # pays at the input channel -- the whole point of the paper.
        source = """
        int main() {
            int data[8];
            int x = 0;
            scanf("%d", &x);
            for (int i = 0; i < 8; i = i + 1) { data[i] = x + i; }
            int t = 0;
            for (int r = 0; r < 20; r = r + 1) {
                for (int i = 0; i < 8; i = i + 1) {
                    if (data[i] > 3) { t = t + data[i]; }
                }
            }
            return t;
        }
        """
        cpa = protect(compile_source(source), scheme="cpa")
        pythia = protect(compile_source(source), scheme="pythia")
        rc = CPU(cpa.module).run(inputs=[b"2"])
        rp = CPU(pythia.module).run(inputs=[b"2"])
        assert rp.ok and rc.ok
        assert rp.return_value == rc.return_value
        assert rp.cycles < rc.cycles
