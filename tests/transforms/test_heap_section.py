"""Tests for Pythia's heap sectioning (Algorithm 4)."""

import pytest

from repro.attacks import AttackController, overflow_payload
from repro.core import protect
from repro.frontend import compile_source
from repro.hardware import CPU, HEAP_ISOLATED_BASE
from repro.ir import Call, verify_module

HEAP_SOURCE = """
int main() {
    char *req;
    int *level;
    req = malloc(16);
    level = malloc(8);
    *level = 0;
    gets(req);
    if (*level > 0) { printf("ADMIN\\n"); return 1; }
    printf("guest\\n");
    return 0;
}
"""


def heap_protect(source=HEAP_SOURCE):
    return protect(compile_source(source), scheme="pythia")


class TestRelocation:
    def test_vulnerable_malloc_rewritten(self):
        result = heap_protect()
        main = result.module.get_function("main")
        callees = [i.callee.name for i in main.instructions() if isinstance(i, Call)]
        assert "pythia_secure_malloc" in callees
        # the non-vulnerable allocation stays on the shared heap
        assert "malloc" in callees
        verify_module(result.module)

    def test_relocated_allocation_lands_in_isolated_section(self):
        result = heap_protect()
        outcome = CPU(result.module).run(inputs=[b"GET"])
        assert outcome.isolated_allocations == 1

    def test_stats_reported(self):
        result = heap_protect()
        stats = result.pass_stats["pythia-heap"]
        assert stats["vulnerable_heap_objects"] >= 1
        assert stats["relocated_allocations"] >= 1

    def test_calloc_relocation(self):
        source = """
        int main() {
            int *data;
            data = calloc(4, 8);
            fgets(data, 16, NULL);
            if (data[3] > 0) { return 1; }
            return 0;
        }
        """
        result = heap_protect(source)
        assert result.pass_stats["pythia-heap"]["relocated_allocations"] == 1
        outcome = CPU(result.module).run(inputs=[b"x"])
        assert outcome.ok
        verify_module(result.module)

    def test_program_without_heap_untouched(self):
        result = heap_protect("int main() { int x = 1; return x; }")
        assert result.pass_stats["pythia-heap"]["relocated_allocations"] == 0


class TestIsolation:
    def test_heap_overflow_prevented_not_detected(self):
        """The shared-heap neighbour is gone: the overflow stays inside
        the isolated section and the flag survives."""
        result = heap_protect()
        attack = AttackController().add(
            "gets",
            overflow_payload(b"GET /", 32, (7).to_bytes(8, "little")),
        )
        outcome = CPU(result.module, attack=attack).run()
        assert outcome.ok
        assert b"guest" in outcome.output  # flow was NOT bent

    def test_same_attack_succeeds_without_protection(self):
        vanilla = protect(compile_source(HEAP_SOURCE), scheme="vanilla")
        attack = AttackController().add(
            "gets",
            overflow_payload(b"GET /", 32, (7).to_bytes(8, "little")),
        )
        outcome = CPU(vanilla.module, attack=attack).run()
        assert outcome.ok
        assert b"ADMIN" in outcome.output

    def test_sectioning_cost_charged(self):
        vanilla = protect(compile_source(HEAP_SOURCE), scheme="vanilla")
        pythia = heap_protect()
        rv = CPU(vanilla.module).run(inputs=[b"GET"])
        rp = CPU(pythia.module).run(inputs=[b"GET"])
        assert rp.cycles > rv.cycles
        assert rp.opcode_counts.get("lib.secure_malloc", 0) == 1


class TestTransparency:
    def test_benign_behaviour_preserved(self):
        vanilla = protect(compile_source(HEAP_SOURCE), scheme="vanilla")
        pythia = heap_protect()
        rv = CPU(vanilla.module).run(inputs=[b"hello"])
        rp = CPU(pythia.module).run(inputs=[b"hello"])
        assert rv.ok and rp.ok
        assert rv.return_value == rp.return_value
        assert rv.output == rp.output

    def test_free_works_on_relocated_chunk(self):
        source = """
        int main() {
            char *buf;
            buf = malloc(16);
            fgets(buf, 16, NULL);
            if (buf[0] == 'x') { free(buf); return 1; }
            free(buf);
            return 0;
        }
        """
        result = heap_protect(source)
        outcome = CPU(result.module).run(inputs=[b"x"])
        assert outcome.ok and outcome.return_value == 1
