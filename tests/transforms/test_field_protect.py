"""Tests for per-field struct canaries (§6.4 future work)."""

import pytest

from repro.attacks import AttackController, overflow_payload
from repro.core import DefenseConfig, protect
from repro.frontend import compile_source
from repro.hardware import CPU
from repro.ir import verify_module
from repro.transforms import make_guarded_struct
from repro.ir.types import I64, I8, StructType, array

INTRA_STRUCT_SOURCE = """
struct account { char name[16]; int privilege; };
int main() {
    struct account acct;
    acct.privilege = 0;
    gets(acct.name);
    if (acct.privilege > 0) { printf("ADMIN\\n"); return 1; }
    printf("user %s\\n", acct.name);
    return 0;
}
"""


def _attack():
    return AttackController().add(
        "gets", overflow_payload(b"eve", 16, (9).to_bytes(8, "little"))
    )


def _protect(fields: bool):
    module = compile_source(INTRA_STRUCT_SOURCE)
    return protect(
        module, config=DefenseConfig(scheme="pythia", protect_fields=fields)
    )


class TestGuardedStructType:
    def test_interleaves_canaries(self):
        struct = StructType("s", [("a", I64), ("b", I64)])
        guarded = make_guarded_struct(struct)
        names = [f for f, _ in guarded.fields]
        assert names == ["a", "__guard0", "b", "__guard1"]

    def test_guarded_fields_are_words(self):
        struct = StructType("s", [("buf", array(I8, 16))])
        guarded = make_guarded_struct(struct)
        assert guarded.field_type(1) == I64
        assert guarded.size == struct.size + 8

    def test_field_offsets_shift(self):
        struct = StructType("s", [("a", I8), ("b", I64)])
        guarded = make_guarded_struct(struct)
        # a, guard, b, guard -- b now sits after the first guard
        assert guarded.field_offset(2) > struct.field_offset(1)


class TestPass:
    def test_struct_rewritten(self):
        result = _protect(fields=True)
        stats = result.pass_stats["pythia-fields"]
        assert stats["structs_guarded"] == 1
        assert stats["field_canaries"] == 2  # name + privilege
        assert "account.guarded" in result.module.structs
        verify_module(result.module)

    def test_disabled_by_default(self):
        result = _protect(fields=False)
        assert "pythia-fields" not in result.pass_stats
        assert "account.guarded" not in result.module.structs

    def test_benign_transparency(self):
        for fields in (False, True):
            result = _protect(fields)
            outcome = CPU(result.module).run(inputs=[b"alice"])
            assert outcome.ok, outcome.trap
            assert b"user alice" in outcome.output

    def test_base_pythia_misses_intra_struct_overflow(self):
        """The §6.4 limitation, demonstrated: the overflow never leaves
        the struct, so the per-object canary is untouched."""
        result = _protect(fields=False)
        outcome = CPU(result.module, attack=_attack()).run()
        assert outcome.ok
        assert b"ADMIN" in outcome.output  # flow bent undetected

    def test_field_canaries_detect_it(self):
        result = _protect(fields=True)
        outcome = CPU(result.module, attack=_attack()).run()
        assert outcome.status == "pac_trap"

    def test_vanilla_attack_succeeds(self):
        module = compile_source(INTRA_STRUCT_SOURCE)
        vanilla = protect(module, scheme="vanilla")
        outcome = CPU(vanilla.module, attack=_attack()).run()
        assert b"ADMIN" in outcome.output

    def test_escaping_struct_left_alone(self):
        source = """
        struct box { char data[8]; int tag; };
        int fill(struct box *b) {
            gets(b->data);
            return b->tag;
        }
        int main() {
            struct box v;
            v.tag = 0;
            return fill(&v);
        }
        """
        module = compile_source(source)
        result = protect(
            module, config=DefenseConfig(scheme="pythia", protect_fields=True)
        )
        # &v escapes into fill(): the struct cannot be re-typed safely
        assert result.pass_stats["pythia-fields"]["structs_guarded"] == 0
        outcome = CPU(result.module).run(inputs=[b"ok"])
        assert outcome.ok

    def test_rerandomised_per_channel(self):
        source = """
        struct pair { char a[8]; char b[8]; };
        int main() {
            struct pair p;
            gets(p.a);
            gets(p.b);
            if (p.a[0] == p.b[0]) { return 1; }
            return 0;
        }
        """
        module = compile_source(source)
        result = protect(
            module, config=DefenseConfig(scheme="pythia", protect_fields=True)
        )
        outcome = CPU(result.module).run(inputs=[b"x", b"x"])
        assert outcome.ok and outcome.return_value == 1
        # overflow from a into b crosses a's trailing field guard
        attack = AttackController().add("gets", b"A" * 10)
        attacked = CPU(result.module, attack=attack).run(inputs=[b"x"])
        assert attacked.status == "pac_trap"
