"""Tests for the Complete Pointer Authentication pass (Algorithm 2)."""

import pytest

from repro.core import protect
from repro.frontend import compile_source
from repro.hardware import CPU
from repro.ir import PacAuth, PacSign, is_pa_instruction, verify_module
from tests.conftest import LISTING1_SOURCE


def cpa_protect(source):
    module = compile_source(source)
    return protect(module, scheme="cpa")


class TestInstrumentation:
    def test_pa_instructions_inserted(self, listing1_module):
        result = protect(listing1_module, scheme="cpa")
        assert result.pa_static > 0
        verify_module(result.module)

    def test_guard_words_for_aggregates(self):
        result = cpa_protect(LISTING1_SOURCE)
        stats = result.pass_stats["cpa"]
        assert stats["guard_words"] >= 2  # str and user

    def test_scalar_signing(self):
        source = """
        int main() {
            int secret = 0;
            scanf("%d", &secret);
            if (secret > 5) { return 1; }
            return 0;
        }
        """
        result = cpa_protect(source)
        stats = result.pass_stats["cpa"]
        assert stats["signed_scalars"] >= 1
        assert stats["pa_auth_inserted"] >= 1

    def test_unaffected_program_gets_no_pa(self):
        # no branches, no ICs: nothing is vulnerable
        result = cpa_protect("int main() { return 1 + 2; }")
        assert result.pa_static == 0

    def test_clean_branch_data_still_protected(self):
        # CPA protects backward slices even without ICs (conservative)
        source = """
        int main() {
            int a[4];
            a[0] = 1;
            if (a[0] > 0) { return 1; }
            return 0;
        }
        """
        result = cpa_protect(source)
        assert result.pa_static > 0

    def test_vulnerable_count_reported(self, listing1_module):
        result = protect(listing1_module, scheme="cpa")
        assert result.pass_stats["cpa"]["vulnerable_variables"] >= 2


class TestBenignTransparency:
    @pytest.mark.parametrize(
        "source,inputs,expected",
        [
            (LISTING1_SOURCE, [b"hi"], 0),
            (
                'int main() { int x = 0; scanf("%d", &x); return x * 2; }',
                [b"21"],
                42,
            ),
            (
                """
                int main() {
                    int vals[4];
                    int x = 0;
                    scanf("%d", &x);
                    for (int i = 0; i < 4; i = i + 1) { vals[i] = x + i; }
                    int t = 0;
                    for (int i = 0; i < 4; i = i + 1) {
                        if (vals[i] > 1) { t = t + vals[i]; }
                    }
                    return t;
                }
                """,
                [b"1"],
                9,
            ),
        ],
    )
    def test_benign_results_unchanged(self, source, inputs, expected):
        vanilla = protect(compile_source(source), scheme="vanilla")
        cpa = protect(compile_source(source), scheme="cpa")
        rv = CPU(vanilla.module).run(inputs=list(inputs))
        rc = CPU(cpa.module).run(inputs=list(inputs))
        assert rv.ok and rc.ok, (rv.trap, rc.trap)
        assert rv.return_value == rc.return_value == expected
        assert rv.output == rc.output

    def test_cpa_slower_than_vanilla(self, listing1_module):
        vanilla = protect(listing1_module, scheme="vanilla")
        cpa = protect(listing1_module, scheme="cpa")
        rv = CPU(vanilla.module).run(inputs=[b"x"])
        rc = CPU(cpa.module).run(inputs=[b"x"])
        assert rc.cycles > rv.cycles
        assert rc.pa_dynamic > 0


class TestDetection:
    def test_overflow_into_guarded_aggregate_detected(self):
        from repro.attacks import AttackController, overflow_payload

        result = cpa_protect(LISTING1_SOURCE)
        attack = AttackController().add(
            "gets", overflow_payload(b"", 16, b"admin\x00")
        )
        outcome = CPU(result.module, attack=attack).run()
        assert outcome.status == "pac_trap"

    def test_tampered_scalar_detected(self):
        # `level` is address-taken (scanf) so it stays in memory; the
        # gets() overflow then sprays raw bytes over its signed slot.
        source = """
        int main() {
            char buf[8];
            int level = 0;
            scanf("%d", &level);
            gets(buf);
            if (level > 0) { printf("ADMIN\\n"); return 1; }
            return 0;
        }
        """
        from repro.attacks import AttackController, overflow_payload

        result = cpa_protect(source)
        attack = AttackController().add(
            "gets", overflow_payload(b"", 8, (9).to_bytes(8, "little"))
        )
        outcome = CPU(result.module, attack=attack).run(inputs=[b"0"])
        assert outcome.detected

    def test_resign_after_ic_keeps_benign_alive(self):
        # without post-IC re-signing this benign program would pac_trap
        source = """
        int main() {
            int x = 0;
            scanf("%d", &x);
            if (x == 7) { return 1; }
            return 0;
        }
        """
        result = cpa_protect(source)
        outcome = CPU(result.module).run(inputs=[b"7"])
        assert outcome.ok and outcome.return_value == 1
