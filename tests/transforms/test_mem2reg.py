"""Tests for SSA construction (mem2reg)."""

import pytest

from repro.frontend import compile_source
from repro.hardware import CPU
from repro.ir import Alloca, Load, Phi, Store, verify_module
from repro.transforms import Mem2Reg, promotable_allocas


def promote(source):
    module = compile_source(source)
    stats = Mem2Reg().run(module)
    verify_module(module)
    return module, stats


def semantics_preserved(source, inputs=None, seed=3):
    raw = compile_source(source)
    before = CPU(raw, seed=seed).run(inputs=list(inputs or []))
    promoted = compile_source(source)
    Mem2Reg().run(promoted)
    verify_module(promoted)
    after = CPU(promoted, seed=seed).run(inputs=list(inputs or []))
    assert before.status == after.status
    assert before.return_value == after.return_value
    assert before.output == after.output
    return before, after


class TestPromotability:
    def test_scalar_promoted(self):
        module, stats = promote("int main() { int x = 3; return x; }")
        assert stats["promoted_allocas"] >= 1
        main = module.get_function("main")
        assert not any(isinstance(i, (Load, Store)) for i in main.instructions())

    def test_array_not_promoted(self):
        module, _ = promote("int main() { int a[4]; a[0] = 1; return a[0]; }")
        main = module.get_function("main")
        assert any(isinstance(i, Alloca) for i in main.instructions())

    def test_address_taken_not_promoted(self):
        source = "int main() { int x = 1; int *p; p = &x; *p = 2; return x; }"
        module = compile_source(source)
        main = module.get_function("main")
        x = next(a for a in main.allocas() if a.name == "x")
        assert x not in promotable_allocas(main)

    def test_scanf_argument_not_promoted(self):
        source = 'int main() { int x = 0; scanf("%d", &x); return x; }'
        module, _ = promote(source)
        main = module.get_function("main")
        assert any(isinstance(i, Alloca) and i.name == "x" for i in main.instructions())

    def test_pointer_variable_promoted(self):
        source = "int main() { int a[2]; int *p; p = a; a[0] = 4; return *p; }"
        module, stats = promote(source)
        main = module.get_function("main")
        assert not any(isinstance(i, Alloca) and i.name == "p" for i in main.instructions())


class TestPhiInsertion:
    def test_diamond_gets_phi(self):
        source = """
        int main() {
            int x = 0;
            int c = 1;
            if (c) { x = 1; } else { x = 2; }
            return x;
        }
        """
        module, stats = promote(source)
        assert stats["inserted_phis"] >= 1
        main = module.get_function("main")
        assert any(isinstance(i, Phi) for i in main.instructions())

    def test_loop_gets_phi(self):
        source = """
        int main() {
            int t = 0;
            for (int i = 0; i < 4; i = i + 1) { t = t + i; }
            return t;
        }
        """
        module, stats = promote(source)
        assert stats["inserted_phis"] >= 1

    def test_straightline_no_phis(self):
        _, stats = promote("int main() { int x = 1; int y = x + 1; return y; }")
        assert stats["inserted_phis"] == 0


class TestSemanticsPreserved:
    def test_diamond(self):
        semantics_preserved(
            """
            int main() {
                int x = 0;
                int c = 0;
                if (c) { x = 10; } else { x = 20; }
                return x;
            }
            """
        )

    def test_loop_accumulator(self):
        semantics_preserved(
            """
            int main() {
                int t = 0;
                for (int i = 1; i <= 10; i = i + 1) { t = t + i; }
                return t;
            }
            """
        )

    def test_nested_loops(self):
        semantics_preserved(
            """
            int main() {
                int t = 0;
                for (int i = 0; i < 4; i = i + 1) {
                    for (int j = 0; j < 3; j = j + 1) { t = t + i * j; }
                }
                return t;
            }
            """
        )

    def test_break_continue(self):
        semantics_preserved(
            """
            int main() {
                int t = 0;
                for (int i = 0; i < 10; i = i + 1) {
                    if (i == 3) { continue; }
                    if (i == 7) { break; }
                    t = t + i;
                }
                return t;
            }
            """
        )

    def test_listing1_behaviour_unchanged(self):
        from tests.conftest import LISTING1_SOURCE

        semantics_preserved(LISTING1_SOURCE, inputs=[b"benign"])

    def test_arrays_and_pointers_mix(self):
        semantics_preserved(
            """
            int main() {
                int a[4];
                int *p;
                int acc = 0;
                for (int i = 0; i < 4; i = i + 1) { a[i] = i * 3; }
                p = a;
                p = p + 1;
                acc = *p + a[3];
                return acc;
            }
            """
        )

    def test_reduces_memory_traffic(self):
        source = """
        int main() {
            int t = 0;
            for (int i = 0; i < 30; i = i + 1) { t = t + i; }
            return t;
        }
        """
        raw = compile_source(source)
        before = CPU(raw).run()
        promoted = compile_source(source)
        Mem2Reg().run(promoted)
        after = CPU(promoted).run()
        before_loads = before.opcode_counts.get("load", 0)
        after_loads = after.opcode_counts.get("load", 0)
        assert after_loads < before_loads
