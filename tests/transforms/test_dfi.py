"""Tests for the DFI baseline instrumentation."""

import pytest

from repro.attacks import AttackController, overflow_payload
from repro.core import protect
from repro.frontend import compile_source
from repro.hardware import CPU
from repro.ir import DfiChkDef, DfiSetDef, verify_module
from tests.conftest import LISTING1_SOURCE


def dfi_protect(source):
    return protect(compile_source(source), scheme="dfi")


def count(module, cls):
    return sum(
        1
        for f in module.defined_functions()
        for i in f.instructions()
        if isinstance(i, cls)
    )


class TestInstrumentation:
    def test_setdef_per_store(self):
        source = "int main() { int a[2]; a[0] = 1; a[1] = 2; return a[0]; }"
        result = dfi_protect(source)
        assert count(result.module, DfiSetDef) >= 2
        verify_module(result.module)

    def test_chkdef_per_analyzable_load(self):
        source = "int main() { int a[2]; a[0] = 1; return a[0]; }"
        result = dfi_protect(source)
        assert count(result.module, DfiChkDef) >= 1

    def test_ic_calls_get_setdef(self, listing1_module):
        result = protect(listing1_module, scheme="dfi")
        setdefs = [
            i
            for f in result.module.defined_functions()
            for i in f.instructions()
            if isinstance(i, DfiSetDef)
        ]
        assert setdefs
        assert result.pass_stats["dfi"]["setdef_inserted"] >= 2

    def test_computed_pointer_loads_unchecked(self):
        source = """
        int main() {
            int a[4];
            int *p;
            a[0] = 1;
            p = a;
            p = p + 1;
            if (*p > 0) { return 1; }
            return 0;
        }
        """
        result = dfi_protect(source)
        assert result.pass_stats["dfi"]["unchecked_loads"] >= 1

    def test_field_loads_unchecked(self):
        source = """
        struct s { int a; int b; };
        int main() {
            struct s v;
            v.a = 1;
            if (v.a > 0) { return 1; }
            return 0;
        }
        """
        result = dfi_protect(source)
        assert result.pass_stats["dfi"]["unchecked_loads"] >= 1

    def test_no_pa_instructions(self, listing1_module):
        result = protect(listing1_module, scheme="dfi")
        assert result.pa_static == 0


class TestRuntime:
    def test_benign_transparency(self, listing1_module):
        vanilla = protect(listing1_module, scheme="vanilla")
        dfi = protect(listing1_module, scheme="dfi")
        rv = CPU(vanilla.module).run(inputs=[b"x"])
        rd = CPU(dfi.module).run(inputs=[b"x"])
        assert rv.ok and rd.ok, rd.trap
        assert rv.return_value == rd.return_value
        assert rv.output == rd.output

    def test_detects_overflow_into_checked_buffer(self):
        result = dfi_protect(LISTING1_SOURCE)
        attack = AttackController().add(
            "gets", overflow_payload(b"", 16, b"admin\x00")
        )
        outcome = CPU(result.module, attack=attack).run()
        assert outcome.status == "dfi_trap"

    def test_misses_wild_store_misdirection(self):
        # the §3 pure-dataflow attack: the wild store's def id is in
        # every allowed set, so DFI cannot flag the forged write
        source = """
        int main() {
            int arr[4];
            int k = 0;
            int vals[2];
            int *p;
            vals[0] = 4;
            vals[1] = 5;
            arr[0] = 0;
            scanf("%d", &k);
            p = arr;
            p = p + k;
            *p = 6;
            if (vals[0] > vals[1]) { return 1; }
            return 0;
        }
        """
        result = dfi_protect(source)

        def steer(cpu):
            arr = cpu.stack_slot_address("arr")
            vals = cpu.stack_slot_address("vals")
            return str((vals - arr) // 8).encode()

        attack = AttackController().add("scanf%d", steer)
        outcome = CPU(result.module, attack=attack).run()
        assert outcome.ok and outcome.return_value == 1  # attack succeeded

    def test_overhead_is_real(self, listing1_module):
        vanilla = protect(listing1_module, scheme="vanilla")
        dfi = protect(listing1_module, scheme="dfi")
        rv = CPU(vanilla.module).run(inputs=[b"x"])
        rd = CPU(dfi.module).run(inputs=[b"x"])
        assert rd.cycles > rv.cycles

    def test_benign_heap_program(self):
        source = """
        int main() {
            int *data;
            data = malloc(32);
            data[0] = 5;
            int v = data[0];
            free(data);
            return v;
        }
        """
        result = dfi_protect(source)
        outcome = CPU(result.module).run()
        assert outcome.ok and outcome.return_value == 5
