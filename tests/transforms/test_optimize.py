"""Tests for constant folding and dead code elimination."""

import pytest

from repro.frontend import compile_source
from repro.hardware import CPU
from repro.ir import CondBranch, verify_module
from repro.transforms import ConstantFold, DeadCodeElimination, Mem2Reg, optimize


def optimized(source):
    module = compile_source(source)
    Mem2Reg().run(module)
    stats = optimize(module)
    verify_module(module)
    return module, stats


def differential(source, inputs=None, seed=5):
    """Optimized and unoptimized programs must behave identically."""
    plain = compile_source(source)
    Mem2Reg().run(plain)
    before = CPU(plain, seed=seed).run(inputs=list(inputs or []))
    module, _ = optimized(source)
    after = CPU(module, seed=seed).run(inputs=list(inputs or []))
    assert before.status == after.status
    assert before.return_value == after.return_value
    assert before.output == after.output
    return before, after


class TestConstantFold:
    def test_arithmetic_folds(self):
        module, stats = optimized("int main() { return 6 * 7; }")
        assert stats["constfold"]["folded"] >= 1
        main = module.get_function("main")
        assert main.entry_block.instructions[-1].value.ref() == "42"

    def test_comparison_folds(self):
        module, stats = optimized("int main() { return 3 < 4; }")
        assert stats["constfold"]["folded"] >= 1

    def test_transitive_folding(self):
        module, stats = optimized("int main() { return (2 + 3) * (10 - 6); }")
        main = module.get_function("main")
        assert main.entry_block.instructions[-1].value.ref() == "20"

    def test_division_by_zero_not_folded(self):
        source = "int main() { int z = 0; return 7 / z; }"
        module, _ = optimized(source)
        result = CPU(module).run()
        assert result.status == "fault"  # the trap is preserved

    def test_constant_branch_resolved(self):
        module, stats = optimized(
            "int main() { if (1 < 2) { return 1; } return 0; }"
        )
        assert stats["constfold"]["branches_resolved"] >= 1
        main = module.get_function("main")
        assert not main.conditional_branches()

    def test_signed_folds(self):
        differential("int main() { return -17 / 5 + -17 % 5; }")

    def test_shifts(self):
        differential("int main() { return (1 << 6) | (256 >> 2); }")


class TestDCE:
    def test_unused_value_removed(self):
        source = "int main() { int unused = 1 + 2; return 7; }"
        module, stats = optimized(source)
        total = stats["constfold"]["folded"] + stats["dce"]["removed_instructions"]
        assert total >= 1
        main = module.get_function("main")
        assert len(main.entry_block.instructions) == 1  # just the ret

    def test_calls_never_removed(self):
        source = 'int main() { printf("side effect\\n"); return 0; }'
        module, _ = optimized(source)
        result = CPU(module).run()
        assert b"side effect" in result.output

    def test_stores_never_removed(self):
        source = "int main() { int a[1]; a[0] = 9; return a[0]; }"
        _, after = differential(source)
        assert after.return_value == 9

    def test_unreachable_block_pruned(self):
        module, stats = optimized(
            "int main() { if (0) { printf(\"never\\n\"); } return 3; }"
        )
        assert stats["dce"]["removed_blocks"] >= 1
        result = CPU(module).run()
        assert result.output == b"" and result.return_value == 3

    def test_pa_auth_preserved(self):
        # pac.auth is a trap point: DCE must never delete it
        from repro.core import protect
        from repro.attacks import AttackController, overflow_payload
        from tests.conftest import LISTING1_SOURCE

        protected = protect(compile_source(LISTING1_SOURCE), scheme="pythia")
        DeadCodeElimination().run(protected.module)
        verify_module(protected.module)
        attack = AttackController().add(
            "gets", overflow_payload(b"", 16, b"admin\x00")
        )
        outcome = CPU(protected.module, attack=attack).run()
        assert outcome.status == "pac_trap"

    def test_idempotent(self):
        module, _ = optimized("int main() { if (1) { return 2; } return 3; }")
        from repro.ir import print_module

        once = print_module(module)
        optimize(module)
        assert print_module(module) == once


class TestDifferential:
    @pytest.mark.parametrize(
        "source",
        [
            "int main() { int t = 0; for (int i = 0; i < 9; i = i + 1) { t = t + i * 2; } return t; }",
            "int main() { int x = 5; if (x > 3 && x < 9) { return x * 2; } return 0; }",
            """
            int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
            int main() { return fib(9); }
            """,
            """
            int main() {
                char b[8];
                gets(b);
                if (b[0] == 'a') { return 1; }
                return 0;
            }
            """,
        ],
    )
    def test_semantics_preserved(self, source):
        differential(source, inputs=[b"abc"])

    def test_loop_with_phi_after_branch_resolution(self):
        source = """
        int main() {
            int t = 0;
            int flag = 1;
            for (int i = 0; i < 5; i = i + 1) {
                if (flag) { t = t + i; } else { t = t - i; }
            }
            return t;
        }
        """
        differential(source)
