"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.ir import (
    Function,
    FunctionType,
    I64,
    I8,
    IRBuilder,
    Module,
    array,
    pointer,
    verify_module,
)


LISTING1_SOURCE = r"""
int access_check(char *pwd) {
    char str[16];
    char user[16];
    strcpy(user, pwd);
    gets(str);
    if (strncmp(user, "admin", 5) == 0) {
        printf("SUPERUSER\n");
        return 1;
    }
    printf("normal user\n");
    return 0;
}

int main() {
    return access_check("guest");
}
"""


@pytest.fixture
def listing1_module():
    """The Listing 1 program, freshly compiled."""
    return compile_source(LISTING1_SOURCE, name="listing1")


@pytest.fixture
def simple_module():
    """A hand-built module: one branch fed by a gets() input channel."""
    from repro.hardware import declare_library

    module = Module("simple")
    declare_library(module, ["gets", "printf", "strncmp"])
    function = Function("main", FunctionType(I64, []))
    module.add_function(function)
    entry = function.append_block("entry")
    yes = function.append_block("yes")
    no = function.append_block("no")
    builder = IRBuilder(entry)
    buf = builder.alloca(array(I8, 16), name="buf")
    buf_ptr = builder.gep(buf, [0, 0])
    builder.call(module.get_function("gets"), [buf_ptr])
    key = module.add_string_literal("key")
    key_ptr = builder.gep(key, [0, 0])
    cmp_result = builder.call(
        module.get_function("strncmp"), [buf_ptr, key_ptr, builder.const(I64, 3)]
    )
    cond = builder.icmp("eq", cmp_result, builder.const(I64, 0))
    builder.cond_branch(cond, yes, no)
    builder.position_at_end(yes)
    builder.ret(builder.const(I64, 1))
    builder.position_at_end(no)
    builder.ret(builder.const(I64, 0))
    verify_module(module)
    return module


def run_minic(source: str, inputs=None, seed: int = 2024):
    """Compile MiniC and execute it, returning the ExecutionResult."""
    from repro.hardware import CPU

    module = compile_source(source)
    cpu = CPU(module, seed=seed)
    return cpu.run(inputs=list(inputs or []))
