"""The content-addressed compilation cache: hits, misses, corruption."""

from __future__ import annotations

import json
import os

from repro.core.config import DefenseConfig
from repro.ir.printer import print_module
from repro.perf import run_suite
from repro.perf.cache import CompilationCache
from repro.workloads import generate_program, get_profile

NAME = "505.mcf_r"

COMPARED_FIELDS = (
    "scheme",
    "status",
    "cycles",
    "instructions",
    "ipc",
    "steps",
    "pa_static",
    "pa_dynamic",
    "binary_bytes",
    "canary_count",
    "isolated_allocations",
)


def entry_files(root):
    return sorted(
        os.path.join(dirpath, filename)
        for dirpath, _, filenames in os.walk(root)
        for filename in filenames
        if filename.endswith(".json")
    )


def assert_summaries_equal(left, right):
    assert set(left.programs) == set(right.programs)
    for name in left.programs:
        for left_s, right_s in zip(
            left.programs[name].schemes, right.programs[name].schemes
        ):
            for field in COMPARED_FIELDS:
                assert getattr(left_s, field) == getattr(right_s, field), (
                    name,
                    left_s.scheme,
                    field,
                )


# -- unit: the cache itself ----------------------------------------------------


def test_store_load_roundtrip(tmp_path):
    cache = CompilationCache(str(tmp_path))
    config = DefenseConfig(scheme="pythia")
    key = cache.key_for("module text", config)
    assert cache.load(key) is None
    cache.store(key, "pythia", "protected text", {"pythia-stack": {"canaries": 2}})
    entry = cache.load(key)
    assert entry["scheme"] == "pythia"
    assert entry["module"] == "protected text"
    assert entry["pass_stats"] == {"pythia-stack": {"canaries": 2}}
    assert (cache.stats.hits, cache.stats.misses, cache.stats.stores) == (1, 1, 1)


def test_key_covers_module_scheme_and_config(tmp_path):
    cache = CompilationCache(str(tmp_path))
    base = cache.key_for("module text", DefenseConfig(scheme="pythia"))
    assert cache.key_for("module text", DefenseConfig(scheme="pythia")) == base
    assert cache.key_for("other text", DefenseConfig(scheme="pythia")) != base
    assert cache.key_for("module text", DefenseConfig(scheme="dfi")) != base
    assert (
        cache.key_for(
            "module text", DefenseConfig(scheme="pythia", protect_heap=False)
        )
        != base
    )


def test_corrupt_entry_is_rejected_not_trusted(tmp_path):
    cache = CompilationCache(str(tmp_path))
    key = cache.key_for("module text", DefenseConfig(scheme="cpa"))
    cache.store(key, "cpa", "protected text", {})
    (path,) = entry_files(tmp_path)

    # Tamper with the payload without refreshing the digest: a stale or
    # bit-flipped entry must be dropped, never served.
    with open(path, "r", encoding="utf-8") as handle:
        blob = json.load(handle)
    blob["payload"]["module"] = "tampered text"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(blob, handle)

    assert cache.load(key) is None
    assert cache.stats.corrupt == 1

    # Truncated/unparseable files are equally a miss.
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    assert cache.load(key) is None


def test_wrong_key_slot_is_rejected(tmp_path):
    cache = CompilationCache(str(tmp_path))
    config = DefenseConfig(scheme="cpa")
    key = cache.key_for("module text", config)
    other = cache.key_for("other text", config)
    cache.store(key, "cpa", "protected text", {})
    (path,) = entry_files(tmp_path)
    target = os.path.join(
        str(tmp_path), other[:2], f"{other}.json"
    )
    os.makedirs(os.path.dirname(target), exist_ok=True)
    os.replace(path, target)
    assert cache.load(other) is None  # internal key disagrees with the slot


# -- concurrent writers: atomic publish, no torn entries -----------------------


def test_same_key_restore_is_skipped_when_valid_entry_exists(tmp_path):
    cache = CompilationCache(str(tmp_path))
    config = DefenseConfig(scheme="pythia")
    key = cache.key_for("module text", config)
    cache.store(key, "pythia", "protected text", {})
    before = os.stat(entry_files(tmp_path)[0])
    # A second writer arriving with the same content-addressed entry
    # detects the verified file and skips the write entirely.
    cache.store(key, "pythia", "protected text", {})
    after = os.stat(entry_files(tmp_path)[0])
    assert cache.stats.stores == 1
    assert (before.st_ino, before.st_mtime_ns) == (after.st_ino, after.st_mtime_ns)
    assert cache.load(key)["module"] == "protected text"


def test_store_replaces_torn_entry(tmp_path):
    cache = CompilationCache(str(tmp_path))
    config = DefenseConfig(scheme="pythia")
    key = cache.key_for("module text", config)
    path = os.path.join(str(tmp_path), key[:2], f"{key}.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"format": "repro-compile-cache')  # truncated write
    cache.store(key, "pythia", "protected text", {})
    assert cache.stats.stores == 1
    assert cache.load(key)["module"] == "protected text"


def _race_store(root, key, barrier, index):
    cache = CompilationCache(root)
    barrier.wait(timeout=30)
    for _ in range(20):
        cache.store(
            key, "pythia", "racing module text " * 100, {"pass": {"n": index}}
        )


def test_concurrent_same_key_stores_never_tear(tmp_path):
    """N processes hammering one key leave exactly one valid entry.

    Every writer publishes via a private O_EXCL temp file and an atomic
    rename, so no interleaving can surface a half-written entry to a
    reader -- the durable guarantee the serve workers' shared cache
    directory depends on.
    """
    import multiprocessing

    context = multiprocessing.get_context("fork")
    cache = CompilationCache(str(tmp_path))
    key = cache.key_for("racing module", DefenseConfig(scheme="pythia"))
    barrier = context.Barrier(4)
    workers = [
        context.Process(target=_race_store, args=(str(tmp_path), key, barrier, i))
        for i in range(4)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=60)
        assert worker.exitcode == 0
    files = entry_files(tmp_path)
    assert len(files) == 1  # one slot, and no .tmp stragglers
    leftovers = [
        name
        for dirpath, _, names in os.walk(tmp_path)
        for name in names
        if name.endswith(".tmp")
    ]
    assert leftovers == []
    entry = cache.load(key)
    assert entry is not None
    assert entry["module"] == "racing module text " * 100


# -- integration: the suite runner against the cache ---------------------------


def test_warm_suite_hits_and_matches_cold_and_uncached(tmp_path):
    cache_dir = str(tmp_path / "cache")
    uncached = run_suite(names=[NAME])
    cold = run_suite(names=[NAME], cache_dir=cache_dir)
    warm = run_suite(names=[NAME], cache_dir=cache_dir)

    schemes = len(cold.schemes)
    assert (cold.cache_hits, cold.cache_misses) == (0, schemes)
    assert (warm.cache_hits, warm.cache_misses) == (schemes, 0)
    assert len(entry_files(cache_dir)) == schemes

    assert_summaries_equal(cold, uncached)
    assert_summaries_equal(warm, cold)


def test_suite_recompiles_corrupted_entry(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = run_suite(names=[NAME], cache_dir=cache_dir)
    files = entry_files(cache_dir)
    assert len(files) == len(cold.schemes)

    with open(files[0], "r", encoding="utf-8") as handle:
        blob = json.load(handle)
    blob["payload"]["module"] = "tampered text"
    with open(files[0], "w", encoding="utf-8") as handle:
        json.dump(blob, handle)

    warm = run_suite(names=[NAME], cache_dir=cache_dir)
    # The tampered entry is detected, recompiled, and re-stored; the
    # other entries still hit.
    assert warm.cache_misses == 1
    assert warm.cache_hits == len(cold.schemes) - 1
    assert_summaries_equal(warm, cold)

    healed = run_suite(names=[NAME], cache_dir=cache_dir)
    assert (healed.cache_hits, healed.cache_misses) == (len(cold.schemes), 0)
    assert_summaries_equal(healed, cold)


def test_cached_modules_print_identically_to_recompiled(tmp_path):
    from repro.metrics import measure_program

    cache_dir = str(tmp_path / "cache")
    program = generate_program(get_profile(NAME))
    cold = measure_program(program, cache_dir=cache_dir)
    warm = measure_program(program, cache_dir=cache_dir)
    for scheme, warm_run in warm.runs.items():
        assert warm_run.cache_hit
        assert not cold.runs[scheme].cache_hit
        assert print_module(warm_run.protection.module) == print_module(
            cold.runs[scheme].protection.module
        )


# -- degrade-to-off on I/O failure ---------------------------------------------


def unwritable_cache(tmp_path):
    """A cache whose root can never materialize: its parent is a file."""
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")
    return CompilationCache(str(blocker / "cache"))


def test_store_oserror_degrades_to_cache_off(tmp_path, caplog):
    import logging

    cache = unwritable_cache(tmp_path)
    key = cache.key_for("module text", DefenseConfig(scheme="pythia"))
    with caplog.at_level(logging.WARNING, logger="repro.perf.cache"):
        cache.store(key, "pythia", "text", {})
    assert cache.disabled
    assert cache.stats.io_errors == 1
    assert cache.stats.stores == 0
    # later operations are silent no-ops / misses
    cache.store(key, "pythia", "text", {})
    assert cache.load(key) is None
    assert cache.stats.misses == 1


def test_degrade_warns_exactly_once(tmp_path, caplog):
    import logging

    cache = unwritable_cache(tmp_path)
    key = cache.key_for("module text", DefenseConfig(scheme="pythia"))
    with caplog.at_level(logging.WARNING, logger="repro.perf.cache"):
        cache.store(key, "pythia", "text", {})
        cache.store(key, "pythia", "other", {})
        cache.load(key)
    warnings = [r for r in caplog.records if "disabling the cache" in r.message]
    assert len(warnings) == 1


def test_read_oserror_degrades_to_cache_off(tmp_path, caplog):
    import logging

    cache = unwritable_cache(tmp_path)
    key = cache.key_for("module text", DefenseConfig(scheme="pythia"))
    with caplog.at_level(logging.WARNING, logger="repro.perf.cache"):
        assert cache.load(key) is None
    assert cache.disabled
    assert cache.stats.io_errors == 1
    assert cache.stats.misses == 1


def test_suite_manifest_records_cache_stats_after_degrade(tmp_path):
    """Even a cache that turned itself off mid-run must leave evidence.

    The suite's failure manifest carries the merged metrics snapshot,
    and the cache publishes every outcome into it in lockstep with
    ``CacheStats`` -- so the final counters (including the ``io_errors``
    that triggered the degrade) survive into the manifest.
    """
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")
    result = run_suite(names=[NAME], cache_dir=str(blocker / "cache"))

    manifest = result.failure_manifest()
    metrics = manifest["metrics"]
    counters = metrics["counters"]
    assert counters["cache.io_errors"] >= 1
    assert counters.get("cache.hits", 0) == 0
    # every scheme fell through to a recompile-and-drop miss
    assert counters["cache.misses"] >= len(result.schemes)
    assert counters.get("cache.stores", 0) == 0
    assert metrics["gauges"]["cache.degraded"] == 1


def test_missing_entry_is_a_plain_miss_not_a_degrade(tmp_path):
    cache = CompilationCache(str(tmp_path))
    key = cache.key_for("module text", DefenseConfig(scheme="pythia"))
    assert cache.load(key) is None
    assert not cache.disabled
    assert cache.stats.io_errors == 0
    assert cache.stats.misses == 1


# -- the warm-load memo: fast, but never a tamper loophole ---------------------


def test_reload_of_unchanged_entry_serves_the_memo(tmp_path):
    cache = CompilationCache(str(tmp_path))
    config = DefenseConfig(scheme="pythia")
    key = cache.key_for("memo module", config)
    cache.store(key, "pythia", "define i64 @main() { ret 0 }", {})
    first = cache.load(key)
    second = cache.load(key)
    # The raw-text digest matched, so the second load skipped the JSON
    # deserialize and returned the identical verified payload object.
    assert second is first
    assert cache.stats.hits == 2


def test_tamper_after_first_load_is_still_rejected(tmp_path):
    cache = CompilationCache(str(tmp_path))
    config = DefenseConfig(scheme="pythia")
    key = cache.key_for("tamper-after-load module", config)
    cache.store(key, "pythia", "define i64 @main() { ret 0 }", {})
    assert cache.load(key) is not None
    path = entry_files(tmp_path)[0]
    with open(path, "r", encoding="utf-8") as handle:
        entry = json.load(handle)
    entry["payload"]["module"] = "define i64 @main() { ret 666 }"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle)
    # The memo is keyed on the digest of the raw file text, so any
    # on-disk change since the first load misses it and falls through
    # to full digest validation -- which rejects the entry.
    assert cache.load(key) is None
    assert cache.stats.corrupt == 1


def test_fault_hook_bypasses_the_memo(tmp_path):
    class CountingHook:
        def __init__(self):
            self.loads = 0

        def on_cache_load(self, key, entry):
            self.loads += 1
            return entry

        def on_cache_store(self, key, text):
            return text

    hook = CountingHook()
    cache = CompilationCache(str(tmp_path), fault_hook=hook)
    config = DefenseConfig(scheme="pythia")
    key = cache.key_for("hooked module", config)
    cache.store(key, "pythia", "define i64 @main() { ret 0 }", {})
    assert cache.load(key) is not None
    assert cache.load(key) is not None
    # Chaos runs must observe every deserialize, so both loads went
    # through the hook instead of the memo.
    assert hook.loads == 2


def test_warm_measurement_reuses_the_parsed_module(tmp_path):
    from repro.metrics import measure_program

    program = generate_program(get_profile(NAME))
    schemes = ("vanilla", "pythia")
    cold = measure_program(program, schemes=schemes, cache_dir=str(tmp_path))
    warm = measure_program(program, schemes=schemes, cache_dir=str(tmp_path))
    for scheme in schemes:
        assert not cold.runs[scheme].cache_hit
        assert warm.runs[scheme].cache_hit
        # The store seeded the in-process parsed-module memo, so the
        # warm run skipped parse_module entirely and got the exact
        # module object the cold run compiled.
        assert warm.runs[scheme].protection.module is cold.runs[scheme].protection.module
