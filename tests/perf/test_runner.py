"""The parallel measurement harness: fan-out correctness and trajectory file."""

from __future__ import annotations

import json

import pytest

from repro.metrics import measure_program
from repro.perf import append_entry, load_entries, run_suite, summarize_measurement
from repro.workloads import generate_program, get_profile

NAMES = ["505.mcf_r", "519.lbm_r"]

SUMMARY_FIELDS = (
    "scheme",
    "status",
    "cycles",
    "instructions",
    "ipc",
    "steps",
    "interpreter",
    "pa_static",
    "pa_dynamic",
    "binary_bytes",
    "canary_count",
    "isolated_allocations",
)


@pytest.fixture(scope="module")
def serial_suite():
    return run_suite(names=NAMES, jobs=1)


def test_parallel_run_matches_serial(serial_suite):
    parallel = run_suite(names=NAMES, jobs=2)
    assert set(parallel.programs) == set(serial_suite.programs)
    assert parallel.jobs == 2
    for name in NAMES:
        serial_program = serial_suite.programs[name]
        parallel_program = parallel.programs[name]
        assert len(serial_program.schemes) == len(parallel_program.schemes)
        for serial_scheme, parallel_scheme in zip(
            serial_program.schemes, parallel_program.schemes
        ):
            for field in SUMMARY_FIELDS:
                assert getattr(serial_scheme, field) == getattr(
                    parallel_scheme, field
                ), (name, serial_scheme.scheme, field)


def test_summaries_match_direct_measurement(serial_suite):
    program = generate_program(get_profile(NAMES[0]))
    measurement = measure_program(program)
    summary = summarize_measurement(measurement)
    suite_program = serial_suite.programs[NAMES[0]]
    for scheme in ("cpa", "pythia", "dfi"):
        assert summary.scheme(scheme).cycles == suite_program.scheme(scheme).cycles
        assert suite_program.runtime_overhead(scheme) == pytest.approx(
            measurement.runtime_overhead(scheme)
        )
        assert suite_program.binary_increase(scheme) == pytest.approx(
            measurement.binary_increase(scheme)
        )


def test_suite_aggregates(serial_suite):
    assert serial_suite.wall_seconds > 0
    assert serial_suite.total_steps > 0
    assert serial_suite.steps_per_second > 0
    assert serial_suite.decode_seconds >= 0
    assert serial_suite.schemes == ("vanilla", "cpa", "pythia", "dfi")
    with pytest.raises(KeyError):
        serial_suite.programs[NAMES[0]].scheme("nonsense")


def test_jobs_must_be_positive():
    with pytest.raises(ValueError, match="jobs"):
        run_suite(names=NAMES, jobs=0)


def test_trajectory_append_and_load(tmp_path):
    path = str(tmp_path / "BENCH_interp.json")
    assert load_entries(path) == []
    first = append_entry(path, {"label": "a", "steps_per_second": 1.0})
    assert [entry["label"] for entry in first] == ["a"]
    second = append_entry(path, {"label": "b", "steps_per_second": 2.0})
    assert [entry["label"] for entry in second] == ["a", "b"]
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload == {
        "entries": [
            {"label": "a", "steps_per_second": 1.0},
            {"label": "b", "steps_per_second": 2.0},
        ]
    }


def test_trajectory_rejects_bad_envelope(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text('{"entries": 42}')
    with pytest.raises(ValueError, match="entries"):
        load_entries(str(path))
