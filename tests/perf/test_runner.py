"""The parallel measurement harness: fan-out correctness and trajectory file."""

from __future__ import annotations

import json

import pytest

from repro.metrics import measure_program
from repro.perf import (
    append_entry,
    block_throughput,
    check_block_regression,
    load_entries,
    plan_jobs,
    run_suite,
    summarize_measurement,
)
from repro.workloads import generate_program, get_profile

NAMES = ["505.mcf_r", "519.lbm_r"]

SUMMARY_FIELDS = (
    "scheme",
    "status",
    "cycles",
    "instructions",
    "ipc",
    "steps",
    "interpreter",
    "pa_static",
    "pa_dynamic",
    "binary_bytes",
    "canary_count",
    "isolated_allocations",
)


@pytest.fixture(scope="module")
def serial_suite():
    return run_suite(names=NAMES, jobs=1)


def test_parallel_run_matches_serial(serial_suite):
    parallel = run_suite(names=NAMES, jobs=2)
    assert set(parallel.programs) == set(serial_suite.programs)
    assert parallel.jobs == 2
    for name in NAMES:
        serial_program = serial_suite.programs[name]
        parallel_program = parallel.programs[name]
        assert len(serial_program.schemes) == len(parallel_program.schemes)
        for serial_scheme, parallel_scheme in zip(
            serial_program.schemes, parallel_program.schemes
        ):
            for field in SUMMARY_FIELDS:
                assert getattr(serial_scheme, field) == getattr(
                    parallel_scheme, field
                ), (name, serial_scheme.scheme, field)


def test_summaries_match_direct_measurement(serial_suite):
    program = generate_program(get_profile(NAMES[0]))
    measurement = measure_program(program)
    summary = summarize_measurement(measurement)
    suite_program = serial_suite.programs[NAMES[0]]
    for scheme in ("cpa", "pythia", "dfi"):
        assert summary.scheme(scheme).cycles == suite_program.scheme(scheme).cycles
        assert suite_program.runtime_overhead(scheme) == pytest.approx(
            measurement.runtime_overhead(scheme)
        )
        assert suite_program.binary_increase(scheme) == pytest.approx(
            measurement.binary_increase(scheme)
        )


def test_suite_aggregates(serial_suite):
    assert serial_suite.wall_seconds > 0
    assert serial_suite.total_steps > 0
    assert serial_suite.steps_per_second > 0
    assert serial_suite.decode_seconds >= 0
    assert serial_suite.schemes == ("vanilla", "cpa", "pythia", "dfi")
    with pytest.raises(KeyError):
        serial_suite.programs[NAMES[0]].scheme("nonsense")


def test_jobs_must_be_positive():
    with pytest.raises(ValueError, match="jobs"):
        run_suite(names=NAMES, jobs=0)


def test_trajectory_append_and_load(tmp_path):
    path = str(tmp_path / "BENCH_interp.json")
    assert load_entries(path) == []
    first = append_entry(path, {"label": "a", "steps_per_second": 1.0})
    assert [entry["label"] for entry in first] == ["a"]
    second = append_entry(path, {"label": "b", "steps_per_second": 2.0})
    assert [entry["label"] for entry in second] == ["a", "b"]
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload == {
        "entries": [
            {"label": "a", "steps_per_second": 1.0},
            {"label": "b", "steps_per_second": 2.0},
        ]
    }


def test_trajectory_rejects_bad_envelope(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text('{"entries": 42}')
    with pytest.raises(ValueError, match="entries"):
        load_entries(str(path))


# -- fan-out planning: degrade instead of forking without parallelism ----------


def test_plan_jobs_serial_is_untouched():
    assert plan_jobs(1, 8) == (1, None)


def test_plan_jobs_clamps_to_task_count():
    effective, reason = plan_jobs(4, 1)
    assert effective == 1
    assert "nothing to overlap" in reason


def test_plan_jobs_zero_tasks_keeps_requested_jobs_valid():
    # run_tasks([]) is a no-op either way; the plan must not emit 0.
    effective, reason = plan_jobs(1, 0)
    assert effective == 1
    assert reason is None


def test_plan_jobs_clamps_to_cpu_count(monkeypatch):
    monkeypatch.setattr("repro.perf.runner.os.cpu_count", lambda: 1)
    effective, reason = plan_jobs(2, 8)
    assert effective == 1
    assert "1 CPU(s)" in reason and "degraded to 1" in reason


def test_plan_jobs_keeps_parallelism_when_cpus_allow(monkeypatch):
    monkeypatch.setattr("repro.perf.runner.os.cpu_count", lambda: 16)
    assert plan_jobs(2, 8) == (2, None)


def test_suite_records_degrade_decision(monkeypatch):
    monkeypatch.setattr("repro.perf.runner.os.cpu_count", lambda: 1)
    result = run_suite(names=[NAMES[0]], jobs=2)
    assert result.jobs == 2
    assert result.jobs_effective == 1
    assert result.degraded is not None
    manifest = result.failure_manifest()
    assert manifest["jobs"] == 2
    assert manifest["jobs_effective"] == 1
    assert manifest["degraded"] == result.degraded


def test_suite_without_degrade_records_none(serial_suite):
    assert serial_suite.jobs_effective == 1
    assert serial_suite.degraded is None
    assert serial_suite.failure_manifest()["degraded"] is None


# -- block-tier regression tracking --------------------------------------------


def _entry(rate):
    return {
        "schemes": {
            "vanilla": {"block_steps_per_second": rate},
            "pythia": {"block_steps_per_second": rate * 4},
        }
    }


def test_block_throughput_is_the_scheme_geomean():
    assert block_throughput(_entry(1000.0)) == pytest.approx(2000.0)


def test_block_throughput_none_without_block_data():
    assert block_throughput({"schemes": {"vanilla": {"steps_per_second": 5.0}}}) is None
    assert block_throughput({"label": "other-bench"}) is None


def test_regression_within_tolerance_passes():
    baseline = [_entry(1000.0)]
    assert check_block_regression(baseline, _entry(950.0)) is None
    assert check_block_regression(baseline, _entry(1200.0)) is None


def test_regression_beyond_tolerance_fails():
    message = check_block_regression([_entry(1000.0)], _entry(800.0))
    assert message is not None
    assert "block tier regressed" in message


def test_regression_skips_entries_without_block_data():
    # The comparison reaches past legacy (pre-block) entries to the
    # last one that actually has block throughput.
    entries = [_entry(1000.0), {"label": "legacy"}]
    assert check_block_regression(entries, _entry(800.0)) is not None
    assert check_block_regression([{"label": "legacy"}], _entry(800.0)) is None
    assert check_block_regression([], _entry(800.0)) is None
