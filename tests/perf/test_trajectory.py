"""The trajectory file and the tolerant block-regression gate."""

from __future__ import annotations

import json

import pytest

from repro.perf import (
    append_entry,
    block_throughput,
    check_block_regression,
    check_block_regression_file,
    load_entries,
    safe_load_entries,
)


def entry(rate=1000.0):
    return {
        "label": "interp-throughput",
        "schemes": {
            "vanilla": {"block_steps_per_second": rate},
            "pythia": {"block_steps_per_second": rate * 0.8},
        },
    }


def legacy_entry():
    """Written before the block tier existed: no block fields at all."""
    return {"label": "interp-throughput", "schemes": {"vanilla": {"speedup": 3.0}}}


class TestLoadEntries:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_entries(str(tmp_path / "none.json")) == []

    def test_strict_load_raises_on_corrupt_json(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            load_entries(str(path))

    def test_safe_load_returns_none_on_corrupt_json(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        path.write_text("{not json")
        assert safe_load_entries(str(path)) is None

    def test_safe_load_returns_none_on_wrong_envelope(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        path.write_text(json.dumps({"entries": "oops"}))
        assert safe_load_entries(str(path)) is None

    def test_append_still_refuses_to_clobber_corrupt_file(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            append_entry(str(path), entry())
        assert path.read_text() == "{not json"  # nothing rewritten


class TestCheckBlockRegressionFile:
    def test_missing_file_skips_with_note(self, tmp_path):
        failure, note = check_block_regression_file(
            str(tmp_path / "BENCH_interp.json"), entry()
        )
        assert failure is None
        assert "no baseline, skipping" in note

    def test_empty_file_skips_with_note(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        path.write_text(json.dumps({"entries": []}))
        failure, note = check_block_regression_file(str(path), entry())
        assert failure is None
        assert "no baseline, skipping" in note

    def test_corrupt_file_skips_with_note(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        path.write_text("{not json")
        failure, note = check_block_regression_file(str(path), entry())
        assert failure is None
        assert "no baseline, skipping" in note

    def test_entry_without_block_fields_skips_with_note(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        append_entry(str(path), entry())
        failure, note = check_block_regression_file(str(path), legacy_entry())
        assert failure is None
        assert "no baseline, skipping" in note

    def test_baseline_without_block_fields_skips_with_note(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        append_entry(str(path), legacy_entry())
        failure, note = check_block_regression_file(str(path), entry())
        assert failure is None
        assert "no baseline, skipping" in note

    def test_regression_still_detected(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        append_entry(str(path), entry(1000.0))
        failure, note = check_block_regression_file(
            str(path), entry(500.0), tolerance=0.10
        )
        assert note is None
        assert "block tier regressed" in failure

    def test_within_tolerance_passes(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        append_entry(str(path), entry(1000.0))
        failure, note = check_block_regression_file(
            str(path), entry(950.0), tolerance=0.10
        )
        assert failure is None and note is None


class TestBlockThroughput:
    def test_geomean_over_schemes(self):
        value = block_throughput(entry(1000.0))
        assert value == pytest.approx((1000.0 * 800.0) ** 0.5)

    def test_none_without_block_fields(self):
        assert block_throughput(legacy_entry()) is None

    def test_sequence_api_still_skips_quietly(self):
        # the low-level check keeps its old contract for callers that
        # already hold entries in memory
        assert check_block_regression([legacy_entry()], entry()) is None
