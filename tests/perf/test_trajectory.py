"""The trajectory file and the tolerant block-regression gate."""

from __future__ import annotations

import json

import pytest

from repro.perf import (
    append_entry,
    block_throughput,
    check_block_regression,
    check_block_regression_file,
    check_serve_regression,
    check_serve_regression_file,
    load_entries,
    profile_digest,
    safe_load_entries,
    serve_p99,
    trace_throughput,
)


def entry(rate=1000.0, trace_rate=None):
    schemes = {
        "vanilla": {"block_steps_per_second": rate},
        "pythia": {"block_steps_per_second": rate * 0.8},
    }
    if trace_rate is not None:
        for name, scheme in schemes.items():
            scheme["trace_steps_per_second"] = (
                trace_rate if name == "vanilla" else trace_rate * 0.8
            )
    return {"label": "interp-throughput", "schemes": schemes}


def legacy_entry():
    """Written before the block tier existed: no block fields at all."""
    return {"label": "interp-throughput", "schemes": {"vanilla": {"speedup": 3.0}}}


class TestLoadEntries:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_entries(str(tmp_path / "none.json")) == []

    def test_strict_load_raises_on_corrupt_json(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            load_entries(str(path))

    def test_safe_load_returns_none_on_corrupt_json(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        path.write_text("{not json")
        assert safe_load_entries(str(path)) is None

    def test_safe_load_returns_none_on_wrong_envelope(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        path.write_text(json.dumps({"entries": "oops"}))
        assert safe_load_entries(str(path)) is None

    def test_append_still_refuses_to_clobber_corrupt_file(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            append_entry(str(path), entry())
        assert path.read_text() == "{not json"  # nothing rewritten


class TestCheckBlockRegressionFile:
    def test_missing_file_skips_with_note(self, tmp_path):
        failure, note = check_block_regression_file(
            str(tmp_path / "BENCH_interp.json"), entry()
        )
        assert failure is None
        assert "no baseline, skipping" in note

    def test_empty_file_skips_with_note(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        path.write_text(json.dumps({"entries": []}))
        failure, note = check_block_regression_file(str(path), entry())
        assert failure is None
        assert "no baseline, skipping" in note

    def test_corrupt_file_skips_with_note(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        path.write_text("{not json")
        failure, note = check_block_regression_file(str(path), entry())
        assert failure is None
        assert "no baseline, skipping" in note

    def test_entry_without_block_fields_skips_with_note(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        append_entry(str(path), entry())
        failure, note = check_block_regression_file(str(path), legacy_entry())
        assert failure is None
        assert "no baseline, skipping" in note

    def test_baseline_without_block_fields_skips_with_note(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        append_entry(str(path), legacy_entry())
        failure, note = check_block_regression_file(str(path), entry())
        assert failure is None
        assert "no baseline, skipping" in note

    def test_regression_still_detected(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        append_entry(str(path), entry(1000.0))
        failure, note = check_block_regression_file(
            str(path), entry(500.0), tolerance=0.10
        )
        assert note is None
        assert "block tier regressed" in failure

    def test_within_tolerance_passes(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        append_entry(str(path), entry(1000.0))
        failure, note = check_block_regression_file(
            str(path), entry(950.0), tolerance=0.10
        )
        assert failure is None and note is None


class TestBlockThroughput:
    def test_geomean_over_schemes(self):
        value = block_throughput(entry(1000.0))
        assert value == pytest.approx((1000.0 * 800.0) ** 0.5)

    def test_none_without_block_fields(self):
        assert block_throughput(legacy_entry()) is None

    def test_sequence_api_still_skips_quietly(self):
        # the low-level check keeps its old contract for callers that
        # already hold entries in memory
        assert check_block_regression([legacy_entry()], entry()) is None


class TestTraceTierGate:
    def test_trace_throughput_geomean(self):
        value = trace_throughput(entry(1000.0, trace_rate=4000.0))
        assert value == pytest.approx((4000.0 * 3200.0) ** 0.5)

    def test_none_for_pre_trace_entries(self):
        # entries written before the trace tier existed never gate it
        assert trace_throughput(entry(1000.0)) is None
        assert trace_throughput(legacy_entry()) is None

    def test_trace_regression_detected(self):
        baseline = entry(1000.0, trace_rate=4000.0)
        failure = check_block_regression(
            [baseline], entry(1000.0, trace_rate=2000.0), tolerance=0.10
        )
        assert "trace tier regressed" in failure

    def test_block_and_trace_regressions_join(self):
        baseline = entry(1000.0, trace_rate=4000.0)
        failure = check_block_regression(
            [baseline], entry(500.0, trace_rate=2000.0), tolerance=0.10
        )
        assert "block tier regressed" in failure
        assert "trace tier regressed" in failure

    def test_pre_trace_baseline_skips_trace_gate_only(self):
        # new entry carries trace data but no prior entry does: the
        # trace gate skips while the block gate still fires
        failure = check_block_regression(
            [entry(1000.0)], entry(500.0, trace_rate=4000.0), tolerance=0.10
        )
        assert "block tier regressed" in failure
        assert "trace" not in failure

    def test_file_gate_covers_trace(self, tmp_path):
        path = tmp_path / "BENCH_interp.json"
        append_entry(str(path), entry(1000.0, trace_rate=4000.0))
        failure, note = check_block_regression_file(
            str(path), entry(1000.0, trace_rate=2000.0), tolerance=0.10
        )
        assert note is None
        assert "trace tier regressed" in failure


def serve_entry(p99=20.0):
    return {
        "label": "serve-latency",
        "serve": {"p50_ms": p99 / 3.0, "p99_ms": p99, "throughput_rps": 100.0},
    }


class TestServeLatencyGate:
    def test_serve_p99_extraction(self):
        assert serve_p99(serve_entry(42.5)) == 42.5
        assert serve_p99(entry()) is None  # interp entries never gate serve
        assert serve_p99({"serve": {"p99_ms": 0}}) is None
        assert serve_p99({"serve": "oops"}) is None

    def test_latency_gates_upward(self):
        baseline = serve_entry(20.0)
        # faster is never a regression
        assert check_serve_regression([baseline], serve_entry(10.0)) is None
        # within tolerance passes
        assert (
            check_serve_regression([baseline], serve_entry(21.9), tolerance=0.10)
            is None
        )
        failure = check_serve_regression(
            [baseline], serve_entry(30.0), tolerance=0.10
        )
        assert "serve p99 latency regressed" in failure

    def test_baseline_is_most_recent_serve_entry(self):
        history = [serve_entry(10.0), entry(), serve_entry(40.0)]
        # gated against 40ms (the latest serve entry), not 10ms
        assert check_serve_regression(history, serve_entry(43.0)) is None

    def test_file_gate_skips_without_baseline(self, tmp_path):
        path = str(tmp_path / "BENCH_serve.json")
        failure, note = check_serve_regression_file(path, serve_entry())
        assert failure is None and "no baseline, skipping" in note

        append_entry(path, entry())  # only non-serve entries on disk
        failure, note = check_serve_regression_file(path, serve_entry())
        assert failure is None and "no prior entry has serve fields" in note

        failure, note = check_serve_regression_file(path, entry())
        assert failure is None and "lacks serve fields" in note

    def test_file_gate_detects_regression(self, tmp_path):
        path = str(tmp_path / "BENCH_serve.json")
        append_entry(path, serve_entry(20.0))
        failure, note = check_serve_regression_file(
            path, serve_entry(30.0), tolerance=0.10
        )
        assert note is None
        assert "serve p99 latency regressed" in failure

    def test_file_gate_tolerates_corrupt_file(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        path.write_text("{not json")
        failure, note = check_serve_regression_file(str(path), serve_entry())
        assert failure is None and "unreadable or corrupt" in note


class TestProfileDigest:
    def test_none_profile_digests_to_none(self):
        assert profile_digest(None) is None

    def test_equal_counts_equal_digest(self):
        counts = {"main:entry": 100, "main:loop": 5000}
        assert profile_digest(counts) == profile_digest(dict(counts))

    def test_int_float_json_round_trip_stable(self):
        # counts re-read from a --profile-out JSON file may come back
        # as floats; that must not split the compiled-region cache
        assert profile_digest({"main:loop": 5000}) == profile_digest(
            {"main:loop": 5000.0}
        )

    def test_zero_and_junk_counts_ignored(self):
        base = {"main:loop": 5000}
        noisy = {"main:loop": 5000, "main:cold": 0, "main:bad": "n/a"}
        assert profile_digest(base) == profile_digest(noisy)

    def test_different_counts_different_digest(self):
        assert profile_digest({"main:loop": 5000}) != profile_digest(
            {"main:loop": 6000}
        )
