"""Crash containment in the suite runner's task engine."""

import os
import time

import pytest

from repro.perf.runner import (
    SuiteError,
    SuiteResult,
    TaskFailure,
    backoff_delay,
    run_tasks,
)


def ok_worker(payload):
    return f"done-{payload}"


def boom_worker(payload):
    if payload == "bad":
        raise RuntimeError("injected failure")
    return f"done-{payload}"


def crash_worker(payload):
    if payload == "bad":
        os._exit(41)
    return f"done-{payload}"


def hang_worker(payload):
    if payload == "bad":
        time.sleep(60)
    return f"done-{payload}"


class FlakyWorker:
    """Fails the first ``failures`` attempts, then succeeds.

    Cross-process attempt counting goes through a marker directory so
    the forked attempts of one task see each other.
    """

    def __init__(self, root, failures):
        self.root = str(root)
        self.failures = failures

    def __call__(self, payload):
        marker = os.path.join(self.root, f"attempts-{payload}")
        os.makedirs(marker, exist_ok=True)
        attempt = len(os.listdir(marker)) + 1
        open(os.path.join(marker, str(attempt)), "w").close()
        if attempt <= self.failures:
            raise RuntimeError(f"attempt {attempt} fails")
        return f"recovered-{payload}"


class TestInjectedException:
    def test_other_tasks_survive_with_keep_going(self):
        results, failures = run_tasks(
            [("a", "a"), ("b", "bad"), ("c", "c")],
            boom_worker,
            jobs=2,
            timeout=30.0,
            keep_going=True,
        )
        assert results == {"a": "done-a", "c": "done-c"}
        assert set(failures) == {"b"}
        failure = failures["b"]
        assert failure.status == "error"
        assert failure.exc_type == "RuntimeError"
        assert "injected failure" in failure.message

    def test_inline_path_matches(self):
        results, failures = run_tasks(
            [("a", "a"), ("b", "bad")], boom_worker, keep_going=True
        )
        assert results == {"a": "done-a"}
        assert failures["b"].status == "error"

    def test_without_keep_going_raises_suite_error(self):
        with pytest.raises(SuiteError, match="'bad'"):
            run_tasks(
                [("bad", "bad"), ("a", "a")],
                boom_worker,
                jobs=2,
                timeout=30.0,
            )


class TestHardCrash:
    def test_dead_worker_is_contained(self):
        results, failures = run_tasks(
            [("a", "a"), ("b", "bad")],
            crash_worker,
            jobs=2,
            timeout=30.0,
            keep_going=True,
        )
        assert results == {"a": "done-a"}
        failure = failures["b"]
        assert failure.status == "crash"
        assert "41" in failure.message


class TestTimeout:
    def test_hang_is_terminated_and_others_finish(self):
        start = time.monotonic()
        results, failures = run_tasks(
            [("a", "a"), ("b", "bad"), ("c", "c")],
            hang_worker,
            jobs=3,
            timeout=1.0,
            keep_going=True,
        )
        assert time.monotonic() - start < 20
        assert results == {"a": "done-a", "c": "done-c"}
        assert failures["b"].status == "timeout"
        assert failures["b"].attempts == 1


class TestRetryAndQuarantine:
    def test_retry_recovers_a_flaky_task(self, tmp_path):
        worker = FlakyWorker(tmp_path, failures=2)
        results, failures = run_tasks(
            [("t", "t")],
            worker,
            jobs=2,
            timeout=30.0,
            retries=2,
            backoff_base=0.01,
        )
        assert results == {"t": "recovered-t"}
        assert failures == {}
        # exactly 3 attempts ran: two failures plus the success
        assert len(os.listdir(tmp_path / "attempts-t")) == 3

    def test_exhausted_retries_quarantine_with_attempt_count(self, tmp_path):
        worker = FlakyWorker(tmp_path, failures=10)
        results, failures = run_tasks(
            [("t", "t")],
            worker,
            jobs=2,
            timeout=30.0,
            retries=1,
            keep_going=True,
            backoff_base=0.01,
        )
        assert results == {}
        assert failures["t"].attempts == 2
        assert failures["t"].quarantined
        assert len(os.listdir(tmp_path / "attempts-t")) == 2


class TestBackoff:
    def test_deterministic_for_same_seed_task_attempt(self):
        args = (7, "bench", 2, 0.25, 8.0)
        assert backoff_delay(*args) == backoff_delay(*args)

    def test_stays_within_the_exponential_envelope(self):
        for attempt in range(1, 8):
            step = min(2.0, 0.25 * 2 ** (attempt - 1))
            delay = backoff_delay(7, "bench", attempt, 0.25, 2.0)
            assert 0.5 * step <= delay <= step

    def test_jitter_varies_across_tasks(self):
        assert backoff_delay(7, "a", 1, 0.25, 8.0) != backoff_delay(
            7, "b", 1, 0.25, 8.0
        )

    def test_huge_attempt_numbers_stay_capped(self):
        # 2.0 ** attempt overflows a float past attempt ~1024; the
        # clamped exponent keeps the delay finite and <= cap forever.
        for attempt in (64, 1025, 10**6):
            delay = backoff_delay(7, "bench", attempt, 0.25, 2.0)
            assert 1.0 <= delay <= 2.0

    def test_clamp_does_not_change_small_attempts(self):
        # The clamp only matters once the step has saturated the cap.
        for attempt in range(1, 12):
            assert backoff_delay(7, "x", attempt, 0.25, 8.0) == (
                backoff_delay(7, "x", attempt, 0.25, 8.0)
            )


class TestBackoffAccounting:
    def test_quarantined_task_records_total_backoff(self, tmp_path):
        worker = FlakyWorker(tmp_path, failures=10)
        _, failures = run_tasks(
            [("t", "t")],
            worker,
            jobs=2,
            timeout=30.0,
            retries=2,
            keep_going=True,
            backoff_base=0.01,
            seed=7,
        )
        failure = failures["t"]
        assert failure.attempts == 3
        # two sleeps happened (between the three attempts), and their
        # durations are exactly the deterministic backoff schedule
        expected = sum(
            backoff_delay(7, "t", attempt, 0.01, 8.0) for attempt in (1, 2)
        )
        assert failure.backoff_total_s == pytest.approx(expected)

    def test_inline_path_accounts_identically(self, tmp_path):
        worker = FlakyWorker(tmp_path, failures=10)
        _, failures = run_tasks(
            [("t", "t")],
            worker,
            jobs=1,
            retries=2,
            keep_going=True,
            backoff_base=0.01,
            seed=7,
        )
        expected = sum(
            backoff_delay(7, "t", attempt, 0.01, 8.0) for attempt in (1, 2)
        )
        assert failures["t"].backoff_total_s == pytest.approx(expected)

    def test_manifest_carries_backoff_total(self):
        failure = TaskFailure(
            name="bad",
            status="error",
            attempts=3,
            message="boom",
            backoff_total_s=0.125,
        )
        assert failure.to_dict()["backoff_total_s"] == 0.125

    def test_no_retries_means_zero_backoff(self, tmp_path):
        worker = FlakyWorker(tmp_path, failures=10)
        _, failures = run_tasks(
            [("t", "t")],
            worker,
            jobs=2,
            timeout=30.0,
            keep_going=True,
        )
        assert failures["t"].backoff_total_s == 0.0


class TestFailureManifest:
    def test_manifest_names_completed_and_quarantined(self):
        result = SuiteResult(
            programs={},
            schemes=("vanilla", "pythia"),
            jobs=2,
            failures={
                "bad": TaskFailure(
                    name="bad",
                    status="timeout",
                    attempts=3,
                    message="attempt exceeded the 1.0s task timeout",
                )
            },
        )
        manifest = result.failure_manifest()
        assert manifest["quarantined"] == ["bad"]
        assert manifest["failures"][0]["status"] == "timeout"
        assert manifest["failures"][0]["attempts"] == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            run_tasks([], ok_worker, jobs=0)
        with pytest.raises(ValueError, match="retries"):
            run_tasks([], ok_worker, retries=-1)
        with pytest.raises(ValueError, match="timeout"):
            run_tasks([], ok_worker, timeout=0)
