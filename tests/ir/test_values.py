"""Unit tests for values: constants, uses, RAUW."""

import pytest

from repro.ir import (
    BinOp,
    Constant,
    Function,
    FunctionType,
    GlobalVariable,
    I64,
    I8,
    IRBuilder,
    Module,
    UndefValue,
    const_int,
    pointer,
)
from repro.ir.values import null_pointer


class TestConstants:
    def test_wrapping_on_construction(self):
        assert Constant(I8, 300).value == 44
        assert Constant(I8, -1).value == 255

    def test_equality(self):
        assert Constant(I64, 5) == Constant(I64, 5)
        assert Constant(I64, 5) != Constant(I8, 5)
        assert Constant(I64, 5) != Constant(I64, 6)

    def test_ref(self):
        assert Constant(I64, 42).ref() == "42"

    def test_null_pointer_ref(self):
        assert null_pointer(pointer(I8)).ref() == "null"

    def test_const_int_helper(self):
        c = const_int(I64, 9)
        assert c.type == I64 and c.value == 9


class TestGlobalVariable:
    def test_is_pointer_valued(self):
        g = GlobalVariable("g", I64, 5)
        assert g.type == pointer(I64)
        assert g.value_type == I64

    def test_ref(self):
        assert GlobalVariable("data", I64).ref() == "@data"


class TestUseTracking:
    def _binop(self):
        a = Constant(I64, 1)
        b = Constant(I64, 2)
        return a, b, BinOp("add", a, b, name="s")

    def test_operands_register_uses(self):
        a, b, add = self._binop()
        assert add in a.users
        assert add in b.users

    def test_set_operand_moves_use(self):
        a, b, add = self._binop()
        c = Constant(I64, 3)
        add.set_operand(0, c)
        assert add not in a.users
        assert add in c.users
        assert add.operands[0] is c

    def test_replace_all_uses_with(self):
        a, _, add = self._binop()
        mul = BinOp("mul", add, add, name="m")
        replacement = Constant(I64, 7)
        add.replace_all_uses_with(replacement)
        assert mul.operands == (replacement, replacement)
        assert not add.uses

    def test_drop_all_operands(self):
        a, b, add = self._binop()
        add.drop_all_operands()
        assert not a.uses and not b.uses
        assert add.operands == ()

    def test_drop_trailing_operand(self):
        a, b, add = self._binop()
        add.drop_trailing_operand()
        assert add.operands == (a,)
        assert not b.uses

    def test_users_deduplicated(self):
        a = Constant(I64, 1)
        add = BinOp("add", a, a, name="s")
        assert a.users == [add]
        assert len(a.uses) == 2


class TestUndef:
    def test_ref(self):
        assert UndefValue(I64).ref() == "undef"


class TestErase:
    def test_erase_from_parent_unlinks(self):
        module = Module("m")
        f = Function("f", FunctionType(I64, []))
        module.add_function(f)
        entry = f.append_block("entry")
        builder = IRBuilder(entry)
        x = builder.add(builder.const(I64, 1), builder.const(I64, 2))
        builder.ret(x)
        x.erase_from_parent()
        assert x.parent is None
        assert x not in entry.instructions
