"""Verifier tests: each class of structural error is caught."""

import pytest

from repro.ir import (
    CondBranch,
    Constant,
    Function,
    FunctionType,
    I64,
    IRBuilder,
    Jump,
    Module,
    Phi,
    Ret,
    VerificationError,
    verify_module,
)


def _module_with(build):
    module = Module("m")
    f = Function("main", FunctionType(I64, []))
    module.add_function(f)
    build(module, f)
    return module


def _expect_error(build, fragment: str):
    module = _module_with(build)
    with pytest.raises(VerificationError) as err:
        verify_module(module)
    assert fragment in str(err.value)


class TestVerifier:
    def test_ok_module_passes(self, simple_module):
        verify_module(simple_module)

    def test_no_blocks(self):
        _expect_error(lambda m, f: None, "no blocks")

    def test_empty_block(self):
        _expect_error(lambda m, f: f.append_block("entry"), "empty block")

    def test_missing_terminator(self):
        def build(m, f):
            b = IRBuilder(f.append_block("entry"))
            b.add(b.const(I64, 1), b.const(I64, 2))

        _expect_error(build, "does not end with a terminator")

    def test_terminator_mid_block(self):
        def build(m, f):
            entry = f.append_block("entry")
            b = IRBuilder(entry)
            b.ret(b.const(I64, 0))
            b.position_at_end(entry)
            entry.append(Ret(Constant(I64, 1)))

        _expect_error(build, "terminator")

    def test_duplicate_block_names(self):
        def build(m, f):
            for _ in range(2):
                blk = f.append_block("entry")
                IRBuilder(blk).ret(Constant(I64, 0))

        _expect_error(build, "duplicate block name")

    def test_duplicate_value_names(self):
        def build(m, f):
            b = IRBuilder(f.append_block("entry"))
            b.alloca(I64, name="x")
            b.alloca(I64, name="x")
            b.ret(b.const(I64, 0))

        _expect_error(build, "duplicate value name")

    def test_ret_type_mismatch(self):
        def build(m, f):
            b = IRBuilder(f.append_block("entry"))
            b.ret()  # void return from i64 function

        _expect_error(build, "ret void")

    def test_call_arity(self):
        def build(m, f):
            callee = m.declare_function("ext", FunctionType(I64, [I64]))
            b = IRBuilder(f.append_block("entry"))
            r = b.call(callee, [])
            b.ret(r)

        _expect_error(build, "with 0 args")

    def test_call_arg_type(self):
        from repro.ir import I8, pointer

        def build(m, f):
            callee = m.declare_function("ext", FunctionType(I64, [pointer(I8)]))
            b = IRBuilder(f.append_block("entry"))
            r = b.call(callee, [b.const(I64, 1)])
            b.ret(r)

        _expect_error(build, "argument type")

    def test_phi_incoming_mismatch(self):
        def build(m, f):
            entry = f.append_block("entry")
            other = f.append_block("other")
            merge = f.append_block("merge")
            b = IRBuilder(entry)
            b.jump(merge)
            b.position_at_end(other)
            b.jump(merge)
            phi = Phi(I64, name="p")
            phi.add_incoming(Constant(I64, 1), entry)  # missing %other
            merge.insert(0, phi)
            b.position_at_end(merge)
            b.ret(phi)

        _expect_error(build, "incoming blocks")

    def test_phi_after_non_phi(self):
        def build(m, f):
            entry = f.append_block("entry")
            merge = f.append_block("merge")
            b = IRBuilder(entry)
            b.jump(merge)
            b.position_at_end(merge)
            x = b.add(b.const(I64, 1), b.const(I64, 1))
            phi = Phi(I64, name="p")
            phi.add_incoming(Constant(I64, 1), entry)
            merge.append(phi)
            b.position_at_end(merge)
            b.ret(x)

        _expect_error(build, "after non-phi")

    def test_cross_function_operand(self):
        module = Module("m")
        f = Function("f", FunctionType(I64, []))
        g = Function("g", FunctionType(I64, []))
        module.add_function(f)
        module.add_function(g)
        bf = IRBuilder(f.append_block("entry"))
        x = bf.add(bf.const(I64, 1), bf.const(I64, 1))
        bf.ret(x)
        bg = IRBuilder(g.append_block("entry"))
        bg.ret(x)  # x belongs to f
        with pytest.raises(VerificationError) as err:
            verify_module(module)
        assert "another function" in str(err.value)

    def test_errors_accumulate(self):
        def build(m, f):
            f.append_block("entry")
            f.append_block("entry")

        module = _module_with(build)
        with pytest.raises(VerificationError) as err:
            verify_module(module)
        assert len(err.value.errors) >= 2
