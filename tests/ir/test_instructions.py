"""Unit tests for IR instructions: typing rules, GEP semantics, printing."""

import pytest

from repro.ir import (
    Alloca,
    BinOp,
    Cast,
    CondBranch,
    Constant,
    DfiChkDef,
    DfiSetDef,
    Function,
    FunctionType,
    GetElementPtr,
    I1,
    I64,
    I8,
    ICmp,
    IRBuilder,
    Jump,
    Load,
    Module,
    PacAuth,
    PacSign,
    Phi,
    Ret,
    SecAssert,
    Select,
    Store,
    StructType,
    array,
    is_pa_instruction,
    pointer,
)
from repro.ir.function import BasicBlock


def _const(v: int) -> Constant:
    return Constant(I64, v)


class TestAlloca:
    def test_yields_pointer(self):
        a = Alloca(array(I8, 16), name="buf")
        assert a.type == pointer(array(I8, 16))
        assert a.allocated_type == array(I8, 16)

    def test_str(self):
        assert str(Alloca(I64, name="x")) == "%x = alloca i64"


class TestLoadStore:
    def test_load_type_is_pointee(self):
        a = Alloca(I64, name="x")
        load = Load(a, name="v")
        assert load.type == I64
        assert load.pointer is a

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(_const(5))

    def test_store_is_void(self):
        a = Alloca(I64, name="x")
        store = Store(_const(1), a)
        assert store.type.is_void
        assert store.value.ref() == "1"

    def test_store_requires_pointer(self):
        with pytest.raises(TypeError):
            Store(_const(1), _const(2))


class TestGep:
    def test_array_walk(self):
        a = Alloca(array(I8, 16), name="buf")
        gep = GetElementPtr(a, [_const(0), _const(3)], name="p")
        assert gep.type == pointer(I8)

    def test_struct_walk(self):
        s = StructType("rec", [("x", I8), ("y", I64)])
        a = Alloca(s, name="r")
        gep = GetElementPtr(a, [_const(0), _const(1)], name="p")
        assert gep.type == pointer(I64)

    def test_struct_index_must_be_constant(self):
        s = StructType("rec", [("x", I8)])
        a = Alloca(s, name="r")
        dynamic = BinOp("add", _const(0), _const(0), name="i")
        with pytest.raises(TypeError):
            GetElementPtr(a, [_const(0), dynamic])

    def test_single_index_keeps_type(self):
        a = Alloca(I64, name="x")
        gep = GetElementPtr(a, [_const(2)], name="p")
        assert gep.type == pointer(I64)

    def test_pointer_arithmetic_flag(self):
        a = Alloca(I64, name="x")
        assert GetElementPtr(a, [_const(2)], name="p").is_pointer_arithmetic()
        assert not GetElementPtr(a, [_const(0)], name="q").is_pointer_arithmetic()

    def test_field_access_flag(self):
        s = StructType("rec", [("x", I8), ("y", I64)])
        a = Alloca(s, name="r")
        gep = GetElementPtr(a, [_const(0), _const(1)], name="p")
        assert gep.is_field_access()
        buf = Alloca(array(I8, 4), name="b")
        plain = GetElementPtr(buf, [_const(0), _const(1)], name="q")
        assert not plain.is_field_access()

    def test_requires_pointer_base(self):
        with pytest.raises(TypeError):
            GetElementPtr(_const(5), [_const(0)])


class TestBinOpICmp:
    def test_binop_type(self):
        add = BinOp("add", _const(1), _const(2), name="s")
        assert add.type == I64
        assert add.opcode == "add"

    def test_binop_type_mismatch(self):
        with pytest.raises(TypeError):
            BinOp("add", _const(1), Constant(I8, 2))

    def test_binop_unknown_op(self):
        with pytest.raises(ValueError):
            BinOp("fadd", _const(1), _const(2))

    def test_icmp_yields_i1(self):
        cmp = ICmp("slt", _const(1), _const(2), name="c")
        assert cmp.type == I1

    def test_icmp_unknown_predicate(self):
        with pytest.raises(ValueError):
            ICmp("lt", _const(1), _const(2))

    def test_icmp_mismatch(self):
        with pytest.raises(TypeError):
            ICmp("eq", _const(1), Constant(I8, 1))


class TestCastSelect:
    def test_cast_type(self):
        c = Cast("trunc", _const(300), I8, name="t")
        assert c.type == I8

    def test_cast_unknown(self):
        with pytest.raises(ValueError):
            Cast("fptosi", _const(1), I8)

    def test_select_type(self):
        cond = ICmp("eq", _const(1), _const(1), name="c")
        sel = Select(cond, _const(1), _const(2), name="s")
        assert sel.type == I64

    def test_select_arm_mismatch(self):
        cond = ICmp("eq", _const(1), _const(1), name="c")
        with pytest.raises(TypeError):
            Select(cond, _const(1), Constant(I8, 2))


class TestControlFlow:
    def _blocks(self):
        f = Function("f", FunctionType(I64, []))
        return f.append_block("a"), f.append_block("b")

    def test_jump(self):
        a, b = self._blocks()
        jump = Jump(b)
        assert jump.is_terminator
        assert jump.successors == [b]

    def test_cond_branch(self):
        a, b = self._blocks()
        cond = ICmp("eq", _const(1), _const(1), name="c")
        br = CondBranch(cond, a, b)
        assert br.successors == [a, b]
        assert br.condition is cond

    def test_ret(self):
        r = Ret(_const(0))
        assert r.is_terminator
        assert r.successors == []
        assert r.value.ref() == "0"
        assert Ret().value is None


class TestPhi:
    def test_incomings(self):
        f = Function("f", FunctionType(I64, []))
        a = f.append_block("a")
        b = f.append_block("b")
        phi = Phi(I64, name="p")
        phi.add_incoming(_const(1), a)
        phi.add_incoming(_const(2), b)
        assert phi.incoming_for_block(a).ref() == "1"
        assert len(phi.incomings) == 2

    def test_missing_incoming(self):
        f = Function("f", FunctionType(I64, []))
        a = f.append_block("a")
        phi = Phi(I64, name="p")
        with pytest.raises(KeyError):
            phi.incoming_for_block(a)


class TestSecurityIntrinsics:
    def test_pac_sign_preserves_type(self):
        sign = PacSign(_const(5), _const(9), "da", name="s")
        assert sign.type == I64
        assert sign.key_id == "da"

    def test_is_pa_instruction(self):
        sign = PacSign(_const(5), _const(9), name="s")
        auth = PacAuth(_const(5), _const(9), name="a")
        assert is_pa_instruction(sign) and is_pa_instruction(auth)
        assert not is_pa_instruction(BinOp("add", _const(1), _const(1), name="x"))

    def test_dfi_setdef(self):
        a = Alloca(I64, name="x")
        sd = DfiSetDef(a, 7, size=8)
        assert sd.def_id == 7 and sd.size == 8
        assert "dfi.setdef" in str(sd)

    def test_dfi_chkdef(self):
        a = Alloca(I64, name="x")
        ck = DfiChkDef(a, frozenset({1, 2}), size=8)
        assert ck.allowed == frozenset({1, 2})
        assert "{1,2}" in str(ck)

    def test_sec_assert(self):
        cond = ICmp("eq", _const(1), _const(1), name="c")
        sa = SecAssert(cond, kind="canary")
        assert sa.kind == "canary"
        assert "!canary" in str(sa)


class TestPrinting:
    def test_binop_str(self):
        assert str(BinOp("add", _const(1), _const(2), name="s")) == "%s = add i64 1, 2"

    def test_icmp_str(self):
        text = str(ICmp("slt", _const(1), _const(2), name="c"))
        assert text == "%c = icmp slt i64 1, 2"

    def test_pac_str_includes_modifier_type(self):
        text = str(PacSign(_const(5), _const(9), "da", name="s"))
        assert text == "%s = pac.sign.da i64 5, i64 9"
