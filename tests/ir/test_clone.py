"""Structural module cloning vs the textual round-trip oracle.

``Module.clone()`` walks the object graph directly; the older
print -> parse round-trip (``clone_module_textual``) is retained as the
correctness oracle: both must produce modules that print identically to
the original, and the structural clone must be fully independent of it.
"""

from __future__ import annotations

import pytest

from repro.core.framework import clone_module_textual, protect
from repro.hardware import CPU
from repro.ir import print_module, verify_module
from repro.ir.instructions import Phi
from repro.workloads import generate_program, get_profile


@pytest.fixture(scope="module")
def benchmark_program():
    return generate_program(get_profile("505.mcf_r"))


@pytest.fixture
def benchmark_module(benchmark_program):
    return benchmark_program.compile()


def test_clone_prints_identical_to_textual_oracle(benchmark_module):
    original_text = print_module(benchmark_module)
    structural = benchmark_module.clone()
    textual = clone_module_textual(benchmark_module)
    assert print_module(structural) == original_text
    assert print_module(textual) == original_text
    verify_module(structural)


def test_clone_prints_identical_listing1(listing1_module):
    clone = listing1_module.clone()
    assert print_module(clone) == print_module(listing1_module)
    verify_module(clone)


def test_clone_shares_no_mutable_structure(benchmark_module):
    clone = benchmark_module.clone()
    assert clone is not benchmark_module
    for name, function in clone.functions.items():
        assert function is not benchmark_module.functions[name]
        assert function.module is clone
        for block in function.blocks:
            assert block.parent is function
            for inst in block.instructions:
                assert inst.parent is block
    for name, gvar in clone.globals.items():
        assert gvar is not benchmark_module.globals[name]
    # Phi incoming blocks must point at the clone's blocks, not the
    # original's -- the interpreter routes on block identity.
    for function in clone.defined_functions():
        block_set = set(map(id, function.blocks))
        for block in function.blocks:
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    for incoming in inst.incoming_blocks:
                        assert id(incoming) in block_set


def test_mutating_clone_leaves_original_untouched(benchmark_module):
    original_text = print_module(benchmark_module)
    clone = benchmark_module.clone()
    # protect in place: instruments the clone's instruction stream
    protect(clone, scheme="pythia", clone=False)
    assert print_module(benchmark_module) == original_text
    assert print_module(clone) != original_text


def test_protect_does_not_mutate_source_module(benchmark_module):
    original_text = print_module(benchmark_module)
    protect(benchmark_module, scheme="dfi")
    assert print_module(benchmark_module) == original_text


def test_clone_behavioral_equality(benchmark_program, benchmark_module):
    clone = benchmark_module.clone()
    inputs = list(benchmark_program.inputs)
    original = CPU(benchmark_module, seed=2024).run(inputs=list(inputs))
    cloned = CPU(clone, seed=2024).run(inputs=list(inputs))
    assert cloned.status == original.status
    assert cloned.return_value == original.return_value
    assert cloned.cycles == original.cycles
    assert cloned.instructions == original.instructions
    assert cloned.steps == original.steps
    assert cloned.output == original.output
    assert cloned.opcode_counts == original.opcode_counts
