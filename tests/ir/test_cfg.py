"""CFG utilities: orderings, dominators, frontiers."""

import pytest

from repro.ir import (
    DominatorTree,
    Function,
    FunctionType,
    I64,
    IRBuilder,
    Module,
    reachable_blocks,
    reverse_postorder,
)


def diamond():
    """entry -> (left | right) -> merge"""
    m = Module("m")
    f = Function("f", FunctionType(I64, [I64]), ["x"])
    m.add_function(f)
    entry = f.append_block("entry")
    left = f.append_block("left")
    right = f.append_block("right")
    merge = f.append_block("merge")
    b = IRBuilder(entry)
    c = b.icmp("sgt", f.args[0], b.const(I64, 0))
    b.cond_branch(c, left, right)
    b.position_at_end(left)
    b.jump(merge)
    b.position_at_end(right)
    b.jump(merge)
    b.position_at_end(merge)
    b.ret(b.const(I64, 0))
    return f, entry, left, right, merge


def loop():
    """entry -> header <-> body, header -> exit"""
    m = Module("m")
    f = Function("f", FunctionType(I64, [I64]), ["n"])
    m.add_function(f)
    entry = f.append_block("entry")
    header = f.append_block("header")
    body = f.append_block("body")
    exit_ = f.append_block("exit")
    b = IRBuilder(entry)
    b.jump(header)
    b.position_at_end(header)
    c = b.icmp("sgt", f.args[0], b.const(I64, 0))
    b.cond_branch(c, body, exit_)
    b.position_at_end(body)
    b.jump(header)
    b.position_at_end(exit_)
    b.ret(b.const(I64, 0))
    return f, entry, header, body, exit_


class TestOrderings:
    def test_reachable_blocks(self):
        f, entry, left, right, merge = diamond()
        assert set(reachable_blocks(f)) == {entry, left, right, merge}

    def test_unreachable_excluded(self):
        f, *_ = diamond()
        dead = f.append_block("dead")
        IRBuilder(dead).ret(IRBuilder.const(I64, 0))
        assert dead not in reachable_blocks(f)

    def test_rpo_entry_first(self):
        f, entry, left, right, merge = diamond()
        rpo = reverse_postorder(f)
        assert rpo[0] is entry
        assert rpo[-1] is merge

    def test_rpo_visits_all(self):
        f, *blocks = loop()
        assert set(reverse_postorder(f)) == set(blocks)


class TestDominators:
    def test_diamond_idoms(self):
        f, entry, left, right, merge = diamond()
        dt = DominatorTree(f)
        assert dt.idom[left] is entry
        assert dt.idom[right] is entry
        assert dt.idom[merge] is entry

    def test_dominates(self):
        f, entry, left, right, merge = diamond()
        dt = DominatorTree(f)
        assert dt.dominates(entry, merge)
        assert not dt.dominates(left, merge)
        assert dt.dominates(merge, merge)

    def test_strictly_dominates(self):
        f, entry, _, _, merge = diamond()
        dt = DominatorTree(f)
        assert dt.strictly_dominates(entry, merge)
        assert not dt.strictly_dominates(merge, merge)

    def test_loop_idoms(self):
        f, entry, header, body, exit_ = loop()
        dt = DominatorTree(f)
        assert dt.idom[body] is header
        assert dt.idom[exit_] is header
        assert dt.idom[header] is entry

    def test_diamond_frontier(self):
        f, entry, left, right, merge = diamond()
        dt = DominatorTree(f)
        assert dt.frontiers[left] == {merge}
        assert dt.frontiers[right] == {merge}
        assert dt.frontiers[entry] == set()

    def test_loop_frontier_includes_header(self):
        f, entry, header, body, exit_ = loop()
        dt = DominatorTree(f)
        assert header in dt.frontiers[body]
        # the header is in its own frontier (it is a loop header)
        assert header in dt.frontiers[header]
