"""Unit tests for the IR type system."""

import pytest

from repro.ir.types import (
    ArrayType,
    FunctionType,
    I1,
    I16,
    I32,
    I64,
    I8,
    IntType,
    PointerType,
    StructType,
    VOID,
    array,
    int_type,
    parse_type,
    pointer,
)


class TestIntTypes:
    def test_sizes(self):
        assert I8.size == 1
        assert I16.size == 2
        assert I32.size == 4
        assert I64.size == 8

    def test_i1_occupies_one_byte(self):
        assert I1.size == 1

    def test_alignment_matches_size(self):
        for t in (I8, I16, I32, I64):
            assert t.alignment == t.size

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(7)

    def test_int_type_interning(self):
        assert int_type(64) is I64
        assert int_type(8) is I8

    def test_int_type_invalid(self):
        with pytest.raises(ValueError):
            int_type(24)

    def test_equality_is_structural(self):
        assert IntType(32) == I32
        assert IntType(32) != I64

    def test_hashable(self):
        assert len({IntType(32), I32, I64}) == 2

    def test_max_unsigned(self):
        assert I8.max_unsigned == 255
        assert I64.max_unsigned == 2**64 - 1

    def test_signed_range(self):
        assert I8.min_signed == -128
        assert I8.max_signed == 127

    def test_wrap(self):
        assert I8.wrap(256) == 0
        assert I8.wrap(257) == 1
        assert I8.wrap(-1) == 255

    def test_to_signed(self):
        assert I8.to_signed(255) == -1
        assert I8.to_signed(127) == 127
        assert I64.to_signed(2**64 - 1) == -1

    def test_str(self):
        assert str(I64) == "i64"
        assert str(I1) == "i1"


class TestPointerTypes:
    def test_size_is_eight(self):
        assert pointer(I8).size == 8
        assert pointer(I64).alignment == 8

    def test_equality(self):
        assert pointer(I8) == pointer(I8)
        assert pointer(I8) != pointer(I64)

    def test_nested(self):
        pp = pointer(pointer(I64))
        assert str(pp) == "i64**"
        assert pp.pointee == pointer(I64)

    def test_predicates(self):
        assert pointer(I8).is_pointer
        assert not pointer(I8).is_integer
        assert I64.is_integer


class TestArrayTypes:
    def test_size(self):
        assert array(I8, 16).size == 16
        assert array(I64, 4).size == 32

    def test_alignment_follows_element(self):
        assert array(I64, 3).alignment == 8
        assert array(I8, 3).alignment == 1

    def test_zero_length(self):
        assert array(I8, 0).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(I8, -1)

    def test_str(self):
        assert str(array(I8, 16)) == "[16 x i8]"

    def test_is_aggregate(self):
        assert array(I8, 4).is_aggregate
        assert not I64.is_aggregate


class TestStructTypes:
    def test_layout_no_padding(self):
        s = StructType("pair", [("a", I64), ("b", I64)])
        assert s.size == 16
        assert s.offsets == [0, 8]

    def test_layout_with_padding(self):
        s = StructType("mixed", [("c", I8), ("x", I64)])
        assert s.offsets == [0, 8]
        assert s.size == 16

    def test_tail_padding(self):
        s = StructType("tail", [("x", I64), ("c", I8)])
        assert s.size == 16  # padded to alignment 8

    def test_field_index(self):
        s = StructType("p", [("x", I64), ("y", I64)])
        assert s.field_index("y") == 1
        with pytest.raises(KeyError):
            s.field_index("z")

    def test_field_type_and_offset(self):
        s = StructType("p", [("x", I8), ("y", I64)])
        assert s.field_type(1) == I64
        assert s.field_offset(1) == 8

    def test_nominal_equality(self):
        a = StructType("s", [("x", I64)])
        b = StructType("s", [("x", I64), ("y", I64)])
        assert a == b  # same name -> same nominal type

    def test_is_aggregate(self):
        assert StructType("s", [("x", I64)]).is_aggregate

    def test_nested_aggregate_layout(self):
        inner = StructType("inner", [("a", I8), ("b", I64)])
        outer = StructType("outer", [("c", I8), ("s", inner)])
        assert outer.field_offset(1) == 8
        assert outer.size == 8 + 16


class TestFunctionTypes:
    def test_str(self):
        ft = FunctionType(I64, [pointer(I8), I64])
        assert str(ft) == "i64 (i8*, i64)"

    def test_varargs_str(self):
        ft = FunctionType(I64, [pointer(I8)], varargs=True)
        assert str(ft) == "i64 (i8*, ...)"

    def test_equality(self):
        assert FunctionType(I64, [I8]) == FunctionType(I64, [I8])
        assert FunctionType(I64, [I8]) != FunctionType(I64, [I8], varargs=True)


class TestVoid:
    def test_void(self):
        assert VOID.is_void
        assert VOID.size == 0
        assert str(VOID) == "void"


class TestParseType:
    def test_scalars(self):
        assert parse_type("i64") == I64
        assert parse_type("void") == VOID

    def test_pointers(self):
        assert parse_type("i8*") == pointer(I8)
        assert parse_type("i64**") == pointer(pointer(I64))

    def test_arrays(self):
        assert parse_type("[4 x i64]") == array(I64, 4)
        assert parse_type("[2 x [3 x i8]]") == array(array(I8, 3), 2)

    def test_struct_reference(self):
        s = StructType("rec", [("x", I64)])
        assert parse_type("%rec", {"rec": s}) is s
        assert parse_type("%rec*", {"rec": s}) == pointer(s)

    def test_unknown_struct(self):
        with pytest.raises(ValueError):
            parse_type("%nope")

    def test_garbage(self):
        with pytest.raises(ValueError):
            parse_type("float")
