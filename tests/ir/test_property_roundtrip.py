"""Property-based tests: random modules survive the textual round-trip."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ir import (
    Function,
    FunctionType,
    I64,
    I8,
    IRBuilder,
    Module,
    array,
    parse_module,
    print_module,
    verify_module,
)

_BINOPS = ["add", "sub", "mul", "and", "or", "xor"]
_PREDICATES = ["eq", "ne", "slt", "sle", "sgt", "sge"]


@st.composite
def straightline_modules(draw):
    """A random straight-line function over i64 arithmetic and memory."""
    module = Module("prop")
    f = Function("main", FunctionType(I64, [I64]), ["x"])
    module.add_function(f)
    builder = IRBuilder(f.append_block("entry"))
    values = [f.args[0], builder.const(I64, draw(st.integers(0, 1000)))]

    slot = builder.alloca(I64, name="slot")
    buf = builder.alloca(array(I8, draw(st.integers(1, 32))), name="buf")

    for _ in range(draw(st.integers(1, 12))):
        kind = draw(st.sampled_from(["binop", "store_load", "gep", "icmp_select"]))
        if kind == "binop":
            op = draw(st.sampled_from(_BINOPS))
            lhs = draw(st.sampled_from(values))
            rhs = draw(st.sampled_from(values))
            values.append(builder.binop(op, lhs, rhs))
        elif kind == "store_load":
            builder.store(draw(st.sampled_from(values)), slot)
            values.append(builder.load(slot))
        elif kind == "gep":
            index = draw(st.integers(0, 3))
            gep = builder.gep(buf, [0, index])
            values.append(builder.cast("ptrtoint", gep, I64))
        else:
            pred = draw(st.sampled_from(_PREDICATES))
            flag = builder.icmp(pred, draw(st.sampled_from(values)), values[0])
            sel = builder.select(flag, draw(st.sampled_from(values)), values[1])
            values.append(sel)
    builder.ret(draw(st.sampled_from(values)))
    verify_module(module)
    return module


@given(straightline_modules())
@settings(max_examples=60, deadline=None)
def test_roundtrip_is_stable(module):
    """print -> parse -> print reaches a fixpoint in one step."""
    text = print_module(module)
    parsed = parse_module(text)
    assert print_module(parsed) == text


@given(straightline_modules())
@settings(max_examples=40, deadline=None)
def test_roundtrip_verifies(module):
    parsed = parse_module(print_module(module))
    verify_module(parsed)


@given(straightline_modules())
@settings(max_examples=30, deadline=None)
def test_roundtrip_preserves_counts(module):
    parsed = parse_module(print_module(module))
    assert parsed.instruction_count() == module.instruction_count()
    assert set(parsed.functions) == set(module.functions)


@given(straightline_modules(), st.integers(-1000, 1000))
@settings(max_examples=30, deadline=None)
def test_roundtrip_preserves_semantics(module, argument):
    """The parsed module computes the same result as the original."""
    from repro.hardware import CPU

    original = CPU(module).run(args=[argument & (2**64 - 1)])
    parsed = parse_module(print_module(module))
    reparsed = CPU(parsed).run(args=[argument & (2**64 - 1)])
    assert original.status == reparsed.status
    assert original.return_value == reparsed.return_value
