"""Printer/parser round-trip and error handling."""

import pytest

from repro.ir import (
    Function,
    FunctionType,
    I64,
    I8,
    IRBuilder,
    Module,
    ParseError,
    StructType,
    array,
    parse_module,
    pointer,
    print_module,
    verify_module,
)
from repro.hardware import declare_library


def roundtrip(module: Module) -> Module:
    text = print_module(module)
    parsed = parse_module(text)
    assert print_module(parsed) == text, "round-trip must be stable"
    verify_module(parsed)
    return parsed


class TestRoundTrip:
    def test_empty_module(self):
        m = Module("empty")
        assert parse_module(print_module(m)).name == "empty"

    def test_globals(self):
        m = Module("g")
        m.add_global("zero", I64)
        m.add_global("five", I64, 5)
        m.add_global("arr", array(I64, 3), [1, 2, 3])
        m.add_string_literal("hi")
        parsed = roundtrip(m)
        assert parsed.globals["five"].initializer == 5
        assert parsed.globals["arr"].initializer == [1, 2, 3]
        assert parsed.globals["zero"].initializer is None

    def test_struct_types(self):
        m = Module("s")
        s = StructType("rec", [("key", I64), ("tag", I8)])
        m.add_struct(s)
        parsed = roundtrip(m)
        assert parsed.structs["rec"].fields[0][0] == "key"
        assert parsed.structs["rec"].size == s.size

    def test_declaration_with_ic_tag(self):
        m = Module("d")
        declare_library(m, ["strcpy"])
        parsed = roundtrip(m)
        assert parsed.functions["strcpy"].input_channel_kind == "put"
        assert parsed.functions["strcpy"].is_declaration

    def test_varargs_declaration(self):
        m = Module("v")
        declare_library(m, ["printf"])
        parsed = roundtrip(m)
        assert parsed.functions["printf"].function_type.varargs

    def test_function_body(self, simple_module):
        parsed = roundtrip(simple_module)
        f = parsed.get_function("main")
        assert len(f.blocks) == 3
        assert len(f.conditional_branches()) == 1

    def test_loop_with_phi(self):
        m = Module("loop")
        f = Function("f", FunctionType(I64, [I64]), ["n"])
        m.add_function(f)
        entry = f.append_block("entry")
        header = f.append_block("header")
        body = f.append_block("body")
        exit_ = f.append_block("exit")
        b = IRBuilder(entry)
        b.jump(header)
        b.position_at_end(header)
        phi = b.phi(I64, name="i")
        cond = b.icmp("slt", phi, f.args[0])
        b.cond_branch(cond, body, exit_)
        b.position_at_end(body)
        nxt = b.add(phi, b.const(I64, 1))
        b.jump(header)
        phi.add_incoming(b.const(I64, 0), entry)
        phi.add_incoming(nxt, body)
        b.position_at_end(exit_)
        b.ret(phi)
        verify_module(m)
        parsed = roundtrip(m)
        parsed_phi = parsed.get_function("f").block_by_name("header").phis[0]
        assert len(parsed_phi.incomings) == 2

    def test_security_intrinsics(self):
        m = Module("sec")
        f = Function("f", FunctionType(I64, []))
        m.add_function(f)
        b = IRBuilder(f.append_block("entry"))
        slot = b.alloca(I64, name="slot")
        mod = b.cast("ptrtoint", slot, I64)
        signed = b.pac_sign(b.const(I64, 7), mod, "da")
        b.store(signed, slot)
        loaded = b.load(slot)
        auth = b.pac_auth(loaded, mod, "da")
        b.dfi_setdef(slot, 5, 8)
        b.dfi_chkdef(slot, frozenset({5, 9}), 8)
        flag = b.icmp("eq", auth, b.const(I64, 7))
        b.sec_assert(flag, "canary")
        b.ret(auth)
        verify_module(m)
        parsed = roundtrip(m)
        text = print_module(parsed)
        assert "pac.sign.da" in text
        assert "dfi.chkdef" in text and "{5,9}" in text
        assert "!canary" in text

    def test_listing1_roundtrip(self, listing1_module):
        roundtrip(listing1_module)

    def test_select_and_casts(self):
        m = Module("misc")
        f = Function("f", FunctionType(I64, [I64]), ["x"])
        m.add_function(f)
        b = IRBuilder(f.append_block("entry"))
        c = b.icmp("sgt", f.args[0], b.const(I64, 0))
        sel = b.select(c, f.args[0], b.const(I64, 0))
        tr = b.cast("trunc", sel, I8)
        back = b.cast("sext", tr, I64)
        b.ret(back)
        roundtrip(m)


class TestParseErrors:
    def test_unknown_opcode(self):
        text = (
            "define i64 @f() {\nentry:\n  %x = frobnicate i64 1\n  ret i64 %x\n}\n"
        )
        with pytest.raises(ParseError):
            parse_module(text)

    def test_unknown_block(self):
        text = "define i64 @f() {\nentry:\n  br label %missing\n}\n"
        with pytest.raises(ParseError):
            parse_module(text)

    def test_unresolved_value(self):
        text = "define i64 @f() {\nentry:\n  ret i64 %ghost\n}\n"
        with pytest.raises(ParseError):
            parse_module(text)

    def test_unterminated_function(self):
        text = "define i64 @f() {\nentry:\n  ret i64 0\n"
        with pytest.raises(ParseError):
            parse_module(text)

    def test_unknown_global(self):
        text = "define i64 @f() {\nentry:\n  %p = getelementptr [2 x i8]* @gone, i64 0, i64 0\n  ret i64 0\n}\n"
        with pytest.raises(ParseError):
            parse_module(text)

    def test_unknown_callee(self):
        text = "define i64 @f() {\nentry:\n  %r = call i64 @nope()\n  ret i64 %r\n}\n"
        with pytest.raises(KeyError):
            parse_module(text)

    def test_forward_reference_within_function_ok(self):
        # a phi may reference a value defined later in the text
        text = (
            "define i64 @f() {\n"
            "entry:\n  br label %h\n"
            "h:\n  %i = phi i64 [ 0, %entry ], [ %n, %b ]\n"
            "  %c = icmp slt i64 %i, 3\n"
            "  br i1 %c, label %b, label %e\n"
            "b:\n  %n = add i64 %i, 1\n  br label %h\n"
            "e:\n  ret i64 %i\n}\n"
        )
        module = parse_module(text)
        verify_module(module)
