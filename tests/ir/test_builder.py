"""Unit tests for IRBuilder positioning and naming."""

import pytest

from repro.ir import (
    Function,
    FunctionType,
    I64,
    I8,
    IRBuilder,
    Module,
    array,
    verify_module,
)


@pytest.fixture
def func():
    module = Module("m")
    f = Function("f", FunctionType(I64, []))
    module.add_function(f)
    f.append_block("entry")
    return f


class TestPositioning:
    def test_append_at_end(self, func):
        builder = IRBuilder(func.entry_block)
        a = builder.add(builder.const(I64, 1), builder.const(I64, 2))
        b = builder.add(a, a)
        assert func.entry_block.instructions == [a, b]

    def test_position_before(self, func):
        builder = IRBuilder(func.entry_block)
        a = builder.add(builder.const(I64, 1), builder.const(I64, 2))
        builder.position_before(a)
        b = builder.sub(builder.const(I64, 3), builder.const(I64, 4))
        assert func.entry_block.instructions == [b, a]

    def test_position_after(self, func):
        builder = IRBuilder(func.entry_block)
        a = builder.add(builder.const(I64, 1), builder.const(I64, 2))
        c = builder.add(a, a)
        builder.position_after(a)
        b = builder.sub(a, a)
        assert func.entry_block.instructions == [a, b, c]

    def test_sequential_inserts_at_position(self, func):
        builder = IRBuilder(func.entry_block)
        a = builder.add(builder.const(I64, 1), builder.const(I64, 2))
        builder.position_before(a)
        x = builder.mul(builder.const(I64, 2), builder.const(I64, 3))
        y = builder.mul(x, x)
        assert func.entry_block.instructions == [x, y, a]

    def test_unpositioned_raises(self):
        builder = IRBuilder()
        with pytest.raises(ValueError):
            builder.add(builder.const(I64, 1), builder.const(I64, 1))

    def test_detached_anchor_raises(self, func):
        builder = IRBuilder(func.entry_block)
        a = builder.add(builder.const(I64, 1), builder.const(I64, 2))
        a.erase_from_parent()
        with pytest.raises(ValueError):
            builder.position_before(a)


class TestNaming:
    def test_fresh_names(self, func):
        builder = IRBuilder(func.entry_block)
        a = builder.add(builder.const(I64, 1), builder.const(I64, 2))
        b = builder.add(a, a)
        assert a.name and b.name and a.name != b.name

    def test_explicit_name_preserved(self, func):
        builder = IRBuilder(func.entry_block)
        a = builder.alloca(I64, name="slot")
        assert a.name == "slot"

    def test_void_instructions_unnamed(self, func):
        builder = IRBuilder(func.entry_block)
        slot = builder.alloca(I64)
        store = builder.store(builder.const(I64, 1), slot)
        assert store.name == ""

    def test_names_avoid_collisions_after_parse(self, func):
        # simulate a parsed function whose names could collide
        builder = IRBuilder(func.entry_block)
        builder.alloca(I64, name="a.1")
        fresh = builder.alloca(I64)
        assert fresh.name != "a.1"


class TestConvenience:
    def test_gep_accepts_ints(self, func):
        builder = IRBuilder(func.entry_block)
        buf = builder.alloca(array(I8, 8), name="buf")
        gep = builder.gep(buf, [0, 3])
        assert gep.indices[0].value == 0
        assert gep.indices[1].value == 3

    def test_full_function_verifies(self, func):
        builder = IRBuilder(func.entry_block)
        a = builder.add(builder.const(I64, 40), builder.const(I64, 2))
        builder.ret(a)
        verify_module(func.module)

    def test_security_builders(self, func):
        builder = IRBuilder(func.entry_block)
        slot = builder.alloca(I64)
        mod = builder.cast("ptrtoint", slot, I64)
        signed = builder.pac_sign(builder.const(I64, 1), mod)
        auth = builder.pac_auth(signed, mod)
        builder.dfi_setdef(slot, 3, 8)
        builder.dfi_chkdef(slot, frozenset({3}), 8)
        cond = builder.icmp("eq", auth, builder.const(I64, 1))
        builder.sec_assert(cond, "canary")
        builder.ret(builder.const(I64, 0))
        verify_module(func.module)
