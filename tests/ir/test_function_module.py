"""Unit tests for functions, blocks, and modules."""

import pytest

from repro.ir import (
    Function,
    FunctionType,
    I64,
    I8,
    IRBuilder,
    Module,
    StructType,
    array,
    pointer,
)


class TestBasicBlock:
    def _func(self):
        m = Module("m")
        f = Function("f", FunctionType(I64, []))
        m.add_function(f)
        return f

    def test_terminator_detection(self):
        f = self._func()
        entry = f.append_block("entry")
        builder = IRBuilder(entry)
        assert entry.terminator is None
        ret = builder.ret(builder.const(I64, 0))
        assert entry.terminator is ret

    def test_successors_predecessors(self):
        f = self._func()
        a = f.append_block("a")
        b = f.append_block("b")
        builder = IRBuilder(a)
        builder.jump(b)
        builder.position_at_end(b)
        builder.ret(builder.const(I64, 0))
        assert a.successors == [b]
        assert b.predecessors == [a]

    def test_insert_before_after(self):
        f = self._func()
        entry = f.append_block("entry")
        builder = IRBuilder(entry)
        x = builder.add(builder.const(I64, 1), builder.const(I64, 1))
        from repro.ir import Alloca

        early = Alloca(I64, name="e")
        entry.insert_before(x, early)
        late = Alloca(I64, name="l")
        entry.insert_after(x, late)
        assert entry.instructions == [early, x, late]

    def test_first_non_phi_index(self):
        from repro.ir import Phi

        f = self._func()
        entry = f.append_block("entry")
        phi = Phi(I64, name="p")
        entry.append(phi)
        builder = IRBuilder(entry)
        builder.ret(phi)
        assert entry.first_non_phi_index() == 1


class TestFunction:
    def test_args_created_from_type(self):
        f = Function("f", FunctionType(I64, [I64, pointer(I8)]), ["n", "buf"])
        assert [a.name for a in f.args] == ["n", "buf"]
        assert f.args[1].type == pointer(I8)

    def test_default_arg_names(self):
        f = Function("f", FunctionType(I64, [I64, I64]))
        assert [a.name for a in f.args] == ["arg0", "arg1"]

    def test_entry_block_requires_blocks(self):
        f = Function("f", FunctionType(I64, []))
        with pytest.raises(ValueError):
            f.entry_block

    def test_block_by_name(self):
        f = Function("f", FunctionType(I64, []))
        b = f.append_block("loop")
        assert f.block_by_name("loop") is b
        with pytest.raises(KeyError):
            f.block_by_name("nope")

    def test_allocas_in_order(self):
        f = Function("f", FunctionType(I64, []))
        entry = f.append_block("entry")
        builder = IRBuilder(entry)
        a = builder.alloca(I64, name="a")
        b = builder.alloca(I64, name="b")
        assert f.allocas() == [a, b]

    def test_conditional_branches(self):
        f = Function("f", FunctionType(I64, []))
        entry = f.append_block("entry")
        t = f.append_block("t")
        e = f.append_block("e")
        builder = IRBuilder(entry)
        c = builder.icmp("eq", builder.const(I64, 1), builder.const(I64, 1))
        br = builder.cond_branch(c, t, e)
        assert f.conditional_branches() == [br]

    def test_unique_name_never_collides(self):
        f = Function("f", FunctionType(I64, []))
        names = {f.unique_name("x") for _ in range(100)}
        assert len(names) == 100


class TestModule:
    def test_duplicate_function_rejected(self):
        m = Module("m")
        m.add_function(Function("f", FunctionType(I64, [])))
        with pytest.raises(ValueError):
            m.add_function(Function("f", FunctionType(I64, [])))

    def test_module_backref(self):
        m = Module("m")
        f = Function("f", FunctionType(I64, []))
        m.add_function(f)
        assert f.module is m

    def test_declare_function_idempotent(self):
        m = Module("m")
        a = m.declare_function("strlen", FunctionType(I64, [pointer(I8)]))
        b = m.declare_function("strlen", FunctionType(I64, [pointer(I8)]))
        assert a is b

    def test_defined_vs_declarations(self):
        m = Module("m")
        m.declare_function("ext", FunctionType(I64, []))
        f = Function("f", FunctionType(I64, []))
        m.add_function(f)
        assert m.defined_functions() == [f]
        assert len(m.declarations()) == 1

    def test_get_function_missing(self):
        with pytest.raises(KeyError):
            Module("m").get_function("nope")

    def test_globals(self):
        m = Module("m")
        g = m.add_global("g", I64, 5)
        assert m.globals["g"] is g
        with pytest.raises(ValueError):
            m.add_global("g", I64)

    def test_string_literal_interning(self):
        m = Module("m")
        a = m.add_string_literal("hello")
        b = m.add_string_literal("hello")
        c = m.add_string_literal("world")
        assert a is b
        assert a is not c
        assert a.initializer == b"hello\x00"
        assert a.constant

    def test_structs(self):
        m = Module("m")
        s = StructType("rec", [("x", I64)])
        m.add_struct(s)
        with pytest.raises(ValueError):
            m.add_struct(StructType("rec", [("y", I64)]))

    def test_instruction_count(self):
        m = Module("m")
        f = Function("f", FunctionType(I64, []))
        m.add_function(f)
        builder = IRBuilder(f.append_block("entry"))
        builder.ret(builder.const(I64, 0))
        assert m.instruction_count() == 1
