"""Golden equivalence: the profile-guided trace tier vs the other tiers.

The trace tier fuses hot multi-block regions into single generated
functions (inlined handlers, loop-local registers, hoisted DFI batch
checks, memoized PAC auth), so every architectural observable must stay
bit-identical to the decoded oracle and the reference interpreter --
including mid-region traps (side-exit reconciliation), step-limit
crossings, and attack scenarios.  Both region-selection modes are
covered: static (no profile) and profile-guided (warmup counts from
``ExecutionProfiler``).
"""

from __future__ import annotations

import pytest

from repro.attacks import build_scenarios
from repro.core import SCHEMES, protect
from repro.hardware import CPU, trace_compile
from repro.hardware.errors import StepLimitExceeded
from repro.observability import ExecutionProfiler
from repro.perf.regions import profile_digest
from repro.workloads import generate_program, get_profile

#: Every architectural observable of an execution.
COMPARED_FIELDS = (
    "status",
    "return_value",
    "cycles",
    "instructions",
    "ipc",
    "steps",
    "output",
    "pac_sign_count",
    "pac_auth_count",
    "isolated_allocations",
)

PROFILES = ("505.mcf_r", "502.gcc_r", "519.lbm_r", "525.x264_r")


def assert_same(expected, trace, context):
    assert trace.interpreter == "trace", context
    for field in COMPARED_FIELDS:
        assert getattr(expected, field) == getattr(trace, field), (
            f"{context}: {field} diverged "
            f"({expected.interpreter}={getattr(expected, field)!r}, "
            f"trace={getattr(trace, field)!r})"
        )
    assert expected.opcode_counts == trace.opcode_counts, context
    assert (expected.trap is None) == (trace.trap is None), context
    if expected.trap is not None:
        assert type(expected.trap) is type(trace.trap), context
        assert str(expected.trap) == str(trace.trap), context


def run_with(module, interpreter, inputs=(), **kwargs):
    cpu = CPU(module, seed=2024, interpreter=interpreter, **kwargs)
    return cpu.run(inputs=list(inputs))


def warmup_counts(module, inputs):
    """Per-block execution counts from a profiled block-tier run."""
    profiler = ExecutionProfiler()
    CPU(module, seed=2024, interpreter="block", profiler=profiler).run(
        inputs=list(inputs)
    )
    return profiler.block_counts()


# -- benign benchmark sweep ----------------------------------------------------------


@pytest.fixture(scope="module", params=PROFILES)
def profile_program(request):
    return generate_program(get_profile(request.param))


def test_profile_equivalence_all_schemes(profile_program):
    """Static region selection: every scheme, trace vs decoded vs reference."""
    module = profile_program.compile()
    inputs = list(profile_program.inputs)
    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        context = f"{profile_program.profile.name}/{scheme}"
        reference = run_with(protected.module, "reference", inputs)
        decoded = run_with(protected.module, "decoded", inputs)
        trace = run_with(protected.module, "trace", inputs)
        assert trace.ok, context
        assert_same(reference, trace, f"{context} (vs reference)")
        assert_same(decoded, trace, f"{context} (vs decoded)")


def test_profile_guided_equivalence_all_schemes(profile_program):
    """Profile-guided region selection must stay bit-identical too."""
    module = profile_program.compile()
    inputs = list(profile_program.inputs)
    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        context = f"{profile_program.profile.name}/{scheme} (profile-guided)"
        counts = warmup_counts(protected.module, inputs)
        assert counts, context  # the warmup actually produced counts
        decoded = run_with(protected.module, "decoded", inputs)
        trace = run_with(
            protected.module, "trace", inputs, trace_profile=counts
        )
        assert_same(decoded, trace, context)


# -- attack scenarios: mid-region traps must reconcile their counters ----------------


@pytest.mark.parametrize("scenario_name", sorted(build_scenarios()))
def test_scenario_equivalence_all_schemes(scenario_name):
    scenario = build_scenarios()[scenario_name]
    module = scenario.compile()
    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        for run in ("benign", "attack"):
            runs = {}
            for interpreter in ("reference", "trace"):
                if run == "benign":
                    result = scenario.run_benign(
                        protected.module, interpreter=interpreter
                    )
                else:
                    result = scenario.run_attack(
                        protected.module, interpreter=interpreter
                    )
                runs[interpreter] = result
            context = f"{scenario_name}/{scheme}/{run}"
            assert_same(runs["reference"], runs["trace"], context)
            if run == "attack":
                assert scenario.attack_outcome(
                    runs["reference"]
                ) == scenario.attack_outcome(runs["trace"]), context


# -- step-limit delegation -----------------------------------------------------------


@pytest.mark.parametrize("max_steps", (100, 999, 1000, 5000))
def test_step_limit_trips_at_the_same_op(max_steps):
    program = generate_program(get_profile("505.mcf_r"))
    module = program.compile()
    inputs = list(program.inputs)
    protected = protect(module, scheme="pythia")
    reference = run_with(protected.module, "reference", inputs, max_steps=max_steps)
    trace = run_with(protected.module, "trace", inputs, max_steps=max_steps)
    assert isinstance(reference.trap, StepLimitExceeded)
    assert_same(reference, trace, f"max_steps={max_steps}")


# -- batched accounting bails out when it cannot be trusted --------------------------


def test_custom_costs_fall_back_to_decoded(listing1_module):
    module = listing1_module.clone()
    expected_cpu = CPU(module, seed=2024, interpreter="reference")
    expected_cpu.timing.costs["load"] = 9
    expected = expected_cpu.run()
    trace_cpu = CPU(module, seed=2024, interpreter="trace")
    trace_cpu.timing.costs["load"] = 9
    trace = trace_cpu.run()
    assert_same(expected, trace, "custom costs")
    assert trace.cycles == expected.cycles


def test_non_default_issue_width_falls_back(listing1_module):
    module = listing1_module.clone()
    expected_cpu = CPU(module, seed=2024, interpreter="reference")
    expected_cpu.timing.issue_width = 2
    expected = expected_cpu.run()
    trace_cpu = CPU(module, seed=2024, interpreter="trace")
    trace_cpu.timing.issue_width = 2
    trace = trace_cpu.run()
    assert_same(expected, trace, "issue width 2")


# -- compile caching keyed by (fingerprint, profile digest) --------------------------


def test_trace_compile_is_cached_on_the_module(listing1_module):
    module = listing1_module.clone()
    program, first_seconds = trace_compile(module)
    again, second_seconds = trace_compile(module)
    assert again is program
    assert second_seconds == 0.0
    assert first_seconds >= 0.0


def test_new_profile_digest_forces_a_recompile(listing1_module):
    module = listing1_module.clone()
    static, _ = trace_compile(module)
    counts = {"main:entry": 500.0}
    guided, seconds = trace_compile(module, counts)
    assert guided is not static  # digest changed -> regions reselected
    assert seconds > 0.0
    assert guided.profile_digest == profile_digest(counts)
    again, cached_seconds = trace_compile(module, dict(counts))
    assert again is guided  # equal counts -> equal digest -> cache hit
    assert cached_seconds == 0.0


def test_trace_program_fuses_blocks(profile_program):
    """At least one multi-block region exists on a loopy benchmark."""
    module = profile_program.compile()
    protected = protect(module, scheme="vanilla")
    program, _ = trace_compile(protected.module)
    assert program.region_count >= 1
    assert program.fused_blocks > program.region_count  # >1 block somewhere


def test_trace_interpreter_recorded_in_result(listing1_module):
    result = CPU(listing1_module.clone(), interpreter="trace").run()
    assert result.interpreter == "trace"
