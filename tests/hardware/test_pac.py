"""Tests for the simulated ARM Pointer Authentication."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.hardware.pac import (
    ADDR_MASK,
    PAC_BITS,
    PAC_FIELD_MASK,
    PacAuthError,
    PointerAuthentication,
    VA_BITS,
    compute_pac,
)


@pytest.fixture
def pa():
    return PointerAuthentication(seed=42)


class TestComputePac:
    def test_deterministic(self):
        assert compute_pac(1, 0x1000, 7) == compute_pac(1, 0x1000, 7)

    def test_fits_in_field(self):
        for value in (0, 1, ADDR_MASK, 0xDEADBEEF):
            assert 0 <= compute_pac(99, value, 3) < (1 << PAC_BITS)

    def test_modifier_sensitivity(self):
        assert compute_pac(1, 0x1000, 7) != compute_pac(1, 0x1000, 8)

    def test_key_sensitivity(self):
        assert compute_pac(1, 0x1000, 7) != compute_pac(2, 0x1000, 7)

    def test_only_address_bits_covered(self):
        # high (PAC field) bits of the input must not influence the MAC
        assert compute_pac(1, 0x1000, 7) == compute_pac(1, 0x1000 | PAC_FIELD_MASK, 7)


class TestSignAuth:
    def test_sign_embeds_pac(self, pa):
        signed = pa.sign(0x1234, 9)
        assert signed & ADDR_MASK == 0x1234
        assert signed & PAC_FIELD_MASK != 0 or compute_pac(
            pa.keys["da"], 0x1234, 9
        ) == 0

    def test_auth_roundtrip(self, pa):
        signed = pa.sign(0x1234, 9)
        assert pa.auth(signed, 9) == 0x1234

    def test_auth_rejects_tampered_value(self, pa):
        signed = pa.sign(0x1234, 9)
        with pytest.raises(PacAuthError):
            pa.auth(signed ^ 0x1, 9)

    def test_auth_rejects_wrong_modifier(self, pa):
        signed = pa.sign(0x1234, 9)
        with pytest.raises(PacAuthError):
            pa.auth(signed, 10)

    def test_auth_rejects_wrong_key(self, pa):
        signed = pa.sign(0x1234, 9, "da")
        with pytest.raises(PacAuthError):
            pa.auth(signed, 9, "ia")

    def test_auth_rejects_raw_value(self, pa):
        # a raw (unsigned) value only passes if its PAC happens to be 0
        raw = 0x4242
        if compute_pac(pa.keys["da"], raw, 1) != 0:
            with pytest.raises(PacAuthError):
                pa.auth(raw, 1)

    def test_try_auth(self, pa):
        signed = pa.sign(5, 1)
        assert pa.try_auth(signed, 1) == 5
        assert pa.try_auth(signed, 2) is None

    def test_counters(self, pa):
        pa.sign(1, 1)
        pa.try_auth(1, 1)
        assert pa.sign_count == 1
        assert pa.auth_count == 1
        assert pa.auth_failures >= 0

    def test_strip(self):
        assert PointerAuthentication.strip(PAC_FIELD_MASK | 0x77) == 0x77

    def test_is_signed(self, pa):
        signed = pa.sign(0x1234, 9)
        expected = compute_pac(pa.keys["da"], 0x1234, 9)
        assert PointerAuthentication.is_signed(signed) == (expected != 0)
        assert not PointerAuthentication.is_signed(0x1234)

    def test_unknown_key(self, pa):
        with pytest.raises(ValueError):
            pa.sign(1, 1, "zz")

    def test_keys_differ_per_seed(self):
        a = PointerAuthentication(seed=1)
        b = PointerAuthentication(seed=2)
        assert a.keys["da"] != b.keys["da"]

    def test_five_architectural_keys(self, pa):
        assert set(pa.keys) == {"ia", "ib", "da", "db", "ga"}


class TestPacProperties:
    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    @settings(max_examples=200, deadline=None)
    def test_sign_auth_roundtrip_property(self, value, modifier):
        pa = PointerAuthentication(seed=7)
        signed = pa.sign(value, modifier)
        assert pa.auth(signed, modifier) == value & ADDR_MASK

    @given(st.integers(0, ADDR_MASK), st.integers(0, 2**40), st.integers(1, 2**24 - 1))
    @settings(max_examples=200, deadline=None)
    def test_flipping_pac_bits_fails(self, value, modifier, flip):
        pa = PointerAuthentication(seed=7)
        signed = pa.sign(value, modifier)
        tampered = signed ^ (flip << VA_BITS)
        assert pa.try_auth(tampered, modifier) is None

    @given(st.integers(0, ADDR_MASK), st.integers(0, 2**40))
    @settings(max_examples=100, deadline=None)
    def test_pac_distribution_not_constant(self, value, modifier):
        # PACs of adjacent values should usually differ (diffusion)
        pa = PointerAuthentication(seed=7)
        a = compute_pac(pa.keys["da"], value, modifier)
        b = compute_pac(pa.keys["da"], value ^ 1, modifier)
        # they may collide with probability 2^-24; assert no systematic equality
        if a == b:
            c = compute_pac(pa.keys["da"], value ^ 2, modifier)
            assert a != c or value & 3 == 3  # extremely unlikely double collision


class TestKeyEpoch:
    """The MAC memo is keyed on ``key_epoch`` so no cached PAC can
    outlive the key that produced it."""

    def test_rekey_invalidates_old_signatures(self, pa):
        signed = pa.sign(0x1000, 7)
        assert pa.auth(signed, 7) == 0x1000
        pa.rekey(seed=4242)
        assert pa.key_epoch == 1
        with pytest.raises(PacAuthError):
            pa.auth(signed, 7)

    def test_rekey_with_same_seed_rederives_same_keys(self, pa):
        signed = pa.sign(0x1000, 7)
        pa.rekey(seed=42)
        # Same seed, same keys: the epoch bump must not change the MAC
        # itself, only force it to be recomputed.
        assert pa.key_epoch == 1
        assert pa.auth(signed, 7) == 0x1000

    def test_corrupt_key_drops_the_memo(self, pa):
        signed = pa.sign(0x2000, 9)
        assert pa._pac_cache
        pa.corrupt_key("da", bit=5)
        assert pa.key_epoch == 1
        assert not pa._pac_cache
        with pytest.raises(PacAuthError):
            pa.auth(signed, 9)

    def test_memoized_auth_matches_fresh_auth(self, pa):
        # First sign populates the memo; the auth must hit it and still
        # agree with a fresh authority that never cached anything.
        signed = pa.sign(0x3000, 11)
        assert pa.auth(signed, 11) == 0x3000
        fresh = PointerAuthentication(seed=42)
        assert fresh.auth(signed, 11) == 0x3000

    def test_repeat_signs_reuse_the_memo(self, pa):
        first = pa.sign(0x4000, 13)
        before = dict(pa._pac_cache)
        second = pa.sign(0x4000, 13)
        assert first == second
        assert pa._pac_cache == before
        assert pa.sign_count == 2
