"""Golden equivalence: pre-decoded dispatch vs the reference interpreter.

The decoded backend is a pure performance transform -- every
architectural observable (status, counters, output, traps) must be
bit-identical to the reference loop.  This suite sweeps every workload
profile under every scheme, plus every attack scenario (benign and
under attack), comparing the two backends field by field.
"""

from __future__ import annotations

import pytest

from repro.attacks import build_scenarios
from repro.core import SCHEMES, protect
from repro.hardware import CPU, INTERPRETERS
from repro.workloads import generate_program, get_profile, profile_names

#: Every architectural observable of an execution.
COMPARED_FIELDS = (
    "status",
    "return_value",
    "cycles",
    "instructions",
    "ipc",
    "steps",
    "output",
    "pac_sign_count",
    "pac_auth_count",
    "isolated_allocations",
)


def assert_equivalent(reference, decoded, context):
    assert reference.interpreter == "reference", context
    assert decoded.interpreter == "decoded", context
    for field in COMPARED_FIELDS:
        assert getattr(reference, field) == getattr(decoded, field), (
            f"{context}: {field} diverged "
            f"(reference={getattr(reference, field)!r}, "
            f"decoded={getattr(decoded, field)!r})"
        )
    assert reference.opcode_counts == decoded.opcode_counts, context
    # traps must agree in kind and message, not just in status
    assert (reference.trap is None) == (decoded.trap is None), context
    if reference.trap is not None:
        assert type(reference.trap) is type(decoded.trap), context
        assert str(reference.trap) == str(decoded.trap), context


# -- benign benchmark sweep: every profile x every scheme ----------------------------


@pytest.fixture(scope="module", params=profile_names())
def profile_program(request):
    return generate_program(get_profile(request.param))


def test_profile_equivalence_all_schemes(profile_program):
    module = profile_program.compile()
    inputs = list(profile_program.inputs)
    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        runs = {}
        for interpreter in INTERPRETERS:
            cpu = CPU(protected.module, seed=2024, interpreter=interpreter)
            runs[interpreter] = cpu.run(inputs=list(inputs))
        context = f"{profile_program.profile.name}/{scheme}"
        assert_equivalent(runs["reference"], runs["decoded"], context)
        assert runs["decoded"].ok, context


# -- attack scenarios: traps and outcomes must match ---------------------------------


@pytest.mark.parametrize("scenario_name", sorted(build_scenarios()))
def test_scenario_equivalence_all_schemes(scenario_name):
    scenario = build_scenarios()[scenario_name]
    module = scenario.compile()
    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        for run in ("benign", "attack"):
            runs = {}
            for interpreter in INTERPRETERS:
                if run == "benign":
                    result = scenario.run_benign(
                        protected.module, interpreter=interpreter
                    )
                else:
                    result = scenario.run_attack(
                        protected.module, interpreter=interpreter
                    )
                runs[interpreter] = result
            context = f"{scenario_name}/{scheme}/{run}"
            assert_equivalent(runs["reference"], runs["decoded"], context)
            if run == "attack":
                assert scenario.attack_outcome(
                    runs["reference"]
                ) == scenario.attack_outcome(runs["decoded"]), context


# -- backend selection API -----------------------------------------------------------


def test_interpreter_recorded_in_result(listing1_module):
    for interpreter in INTERPRETERS:
        result = CPU(listing1_module.clone(), interpreter=interpreter).run()
        assert result.interpreter == interpreter


def test_unknown_interpreter_rejected(listing1_module):
    with pytest.raises(ValueError, match="interpreter"):
        CPU(listing1_module, interpreter="bogus")


def test_environment_selects_interpreter(listing1_module, monkeypatch):
    monkeypatch.setenv("REPRO_INTERPRETER", "reference")
    result = CPU(listing1_module.clone()).run()
    assert result.interpreter == "reference"
