"""Golden equivalence: the block-compiled tier vs the other two tiers.

The block tier batches timing/step accounting per basic block and
inlines handler bodies into generated Python, so every architectural
observable must stay bit-identical to both the decoded and the
reference interpreters -- including mid-block traps (whose counter
state the generated ``except`` clause repairs), step-limit crossings
(delegated to the decoded loop), and attack scenarios.
"""

from __future__ import annotations

import pytest

from repro.attacks import build_scenarios
from repro.core import SCHEMES, protect
from repro.hardware import CPU
from repro.hardware.blockc import block_compile
from repro.hardware.errors import StepLimitExceeded
from repro.workloads import generate_program, get_profile

#: Every architectural observable of an execution.
COMPARED_FIELDS = (
    "status",
    "return_value",
    "cycles",
    "instructions",
    "ipc",
    "steps",
    "output",
    "pac_sign_count",
    "pac_auth_count",
    "isolated_allocations",
)

#: A spread of generated workloads: integer-heavy, pointer-chasing,
#: and branchy control flow all exercise different specializers.
PROFILES = ("505.mcf_r", "502.gcc_r", "519.lbm_r", "525.x264_r")


def assert_same(expected, block, context):
    assert block.interpreter == "block", context
    for field in COMPARED_FIELDS:
        assert getattr(expected, field) == getattr(block, field), (
            f"{context}: {field} diverged "
            f"({expected.interpreter}={getattr(expected, field)!r}, "
            f"block={getattr(block, field)!r})"
        )
    assert expected.opcode_counts == block.opcode_counts, context
    assert (expected.trap is None) == (block.trap is None), context
    if expected.trap is not None:
        assert type(expected.trap) is type(block.trap), context
        assert str(expected.trap) == str(block.trap), context


def run_with(module, interpreter, inputs=(), **kwargs):
    cpu = CPU(module, seed=2024, interpreter=interpreter, **kwargs)
    return cpu.run(inputs=list(inputs))


# -- benign benchmark sweep ----------------------------------------------------------


@pytest.fixture(scope="module", params=PROFILES)
def profile_program(request):
    return generate_program(get_profile(request.param))


def test_profile_equivalence_all_schemes(profile_program):
    module = profile_program.compile()
    inputs = list(profile_program.inputs)
    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        context = f"{profile_program.profile.name}/{scheme}"
        reference = run_with(protected.module, "reference", inputs)
        decoded = run_with(protected.module, "decoded", inputs)
        block = run_with(protected.module, "block", inputs)
        assert block.ok, context
        assert_same(reference, block, f"{context} (vs reference)")
        assert_same(decoded, block, f"{context} (vs decoded)")


# -- attack scenarios: mid-block traps must repair their counters --------------------


@pytest.mark.parametrize("scenario_name", sorted(build_scenarios()))
def test_scenario_equivalence_all_schemes(scenario_name):
    scenario = build_scenarios()[scenario_name]
    module = scenario.compile()
    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        for run in ("benign", "attack"):
            runs = {}
            for interpreter in ("reference", "block"):
                if run == "benign":
                    result = scenario.run_benign(
                        protected.module, interpreter=interpreter
                    )
                else:
                    result = scenario.run_attack(
                        protected.module, interpreter=interpreter
                    )
                runs[interpreter] = result
            context = f"{scenario_name}/{scheme}/{run}"
            assert_same(runs["reference"], runs["block"], context)
            if run == "attack":
                assert scenario.attack_outcome(
                    runs["reference"]
                ) == scenario.attack_outcome(runs["block"]), context


# -- step-limit delegation -----------------------------------------------------------


@pytest.mark.parametrize("max_steps", (100, 999, 1000, 5000))
def test_step_limit_trips_at_the_same_op(max_steps):
    program = generate_program(get_profile("505.mcf_r"))
    module = program.compile()
    inputs = list(program.inputs)
    protected = protect(module, scheme="pythia")
    reference = run_with(protected.module, "reference", inputs, max_steps=max_steps)
    block = run_with(protected.module, "block", inputs, max_steps=max_steps)
    assert isinstance(reference.trap, StepLimitExceeded)
    assert_same(reference, block, f"max_steps={max_steps}")


# -- batched accounting bails out when it cannot be trusted --------------------------


def test_custom_costs_fall_back_to_decoded(listing1_module):
    module = listing1_module.clone()
    expected_cpu = CPU(module, seed=2024, interpreter="reference")
    expected_cpu.timing.costs["load"] = 9
    expected = expected_cpu.run()
    block_cpu = CPU(module, seed=2024, interpreter="block")
    block_cpu.timing.costs["load"] = 9
    block = block_cpu.run()
    assert_same(expected, block, "custom costs")
    assert block.cycles == expected.cycles


def test_non_default_issue_width_falls_back(listing1_module):
    module = listing1_module.clone()
    expected_cpu = CPU(module, seed=2024, interpreter="reference")
    expected_cpu.timing.issue_width = 2
    expected = expected_cpu.run()
    block_cpu = CPU(module, seed=2024, interpreter="block")
    block_cpu.timing.issue_width = 2
    block = block_cpu.run()
    assert_same(expected, block, "issue width 2")


# -- compile caching -----------------------------------------------------------------


def test_block_compile_is_cached_on_the_module(listing1_module):
    module = listing1_module.clone()
    program, first_seconds = block_compile(module)
    again, second_seconds = block_compile(module)
    assert again is program
    assert second_seconds == 0.0
    assert first_seconds >= 0.0


def test_block_interpreter_recorded_in_result(listing1_module):
    result = CPU(listing1_module.clone(), interpreter="block").run()
    assert result.interpreter == "block"
