"""Tests for the IR interpreter (CPU): semantics, traps, counters."""

import pytest

from repro.frontend import compile_source
from repro.hardware import (
    CPU,
    CanaryTrap,
    DfiTrap,
    MemoryFault,
    PacAuthError,
    StepLimitExceeded,
    declare_library,
)
from repro.ir import (
    Function,
    FunctionType,
    I64,
    I8,
    IRBuilder,
    Module,
    array,
    pointer,
    verify_module,
)
from tests.conftest import run_minic


def build_main(body):
    """Build a module whose main is produced by ``body(builder, module)``."""
    module = Module("t")
    f = Function("main", FunctionType(I64, []))
    module.add_function(f)
    builder = IRBuilder(f.append_block("entry"))
    body(builder, module, f)
    verify_module(module)
    return module


class TestArithmetic:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("int main() { return 7 + 5; }", 12),
            ("int main() { return 7 - 9; }", (7 - 9) % 2**64),
            ("int main() { return 6 * 7; }", 42),
            ("int main() { return 17 / 5; }", 3),
            ("int main() { return -17 / 5; }", (-3) % 2**64),
            ("int main() { return 17 % 5; }", 2),
            ("int main() { return -17 % 5; }", (-2) % 2**64),
            ("int main() { return 12 & 10; }", 8),
            ("int main() { return 12 | 3; }", 15),
            ("int main() { return 12 ^ 10; }", 6),
            ("int main() { return 3 << 4; }", 48),
            ("int main() { return 48 >> 4; }", 3),
            ("int main() { return -8 >> 1; }", (-4) % 2**64),
        ],
    )
    def test_binops(self, source, expected):
        result = run_minic(source)
        assert result.ok
        assert result.return_value == expected

    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("3 < 4", 1),
            ("4 < 3", 0),
            ("-1 < 0", 1),
            ("3 == 3", 1),
            ("3 != 3", 0),
            ("5 >= 5", 1),
        ],
    )
    def test_comparisons_are_signed(self, expr, expected):
        result = run_minic(f"int main() {{ return {expr}; }}")
        assert result.return_value == expected

    def test_divide_by_zero_faults(self):
        result = run_minic("int main() { int z = 0; return 5 / z; }")
        assert result.status == "fault"


class TestMemorySemantics:
    def test_frame_layout_follows_alloca_order(self):
        source = """
        int main() {
            char a[8];
            char b[8];
            a[0] = 1;
            b[0] = 2;
            // overflow a by 8 bytes: lands exactly on b[0]
            a[8] = 99;
            return b[0];
        }
        """
        result = run_minic(source)
        assert result.return_value == 99

    def test_null_load_traps(self):
        source = "int main() { int *p; p = NULL; return *p; }"
        assert run_minic(source).status == "fault"

    def test_null_store_traps(self):
        source = "int main() { int *p; p = NULL; *p = 1; return 0; }"
        assert run_minic(source).status == "fault"

    def test_globals_initialised(self):
        source = "int g = 41;\nint main() { return g + 1; }"
        assert run_minic(source).return_value == 42

    def test_global_string_initialiser(self):
        source = 'char msg[8] = "hey";\nint main() { return strlen(msg); }'
        assert run_minic(source).return_value == 3

    def test_struct_field_addressing(self):
        source = """
        struct pair { int a; int b; };
        int main() {
            struct pair p;
            p.a = 3; p.b = 39;
            return p.a + p.b;
        }
        """
        assert run_minic(source).return_value == 42

    def test_recursion(self):
        source = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(10); }
        """
        assert run_minic(source).return_value == 55

    def test_unbounded_recursion_faults(self):
        source = "int f(int n) { return f(n + 1); }\nint main() { return f(0); }"
        result = run_minic(source)
        assert result.status in ("fault", "limit")


class TestTraps:
    def test_pac_trap_surfaces(self):
        def body(builder, module, f):
            slot = builder.alloca(I64, name="slot")
            modifier = builder.cast("ptrtoint", slot, I64)
            builder.store(builder.const(I64, 5), slot)  # raw store
            loaded = builder.load(slot)
            builder.pac_auth(loaded, modifier)  # raw value: PAC missing
            builder.ret(builder.const(I64, 0))

        result = CPU(build_main(body)).run()
        assert result.status == "pac_trap"
        assert isinstance(result.trap, PacAuthError)

    def test_sec_assert_trap(self):
        def body(builder, module, f):
            cond = builder.icmp("eq", builder.const(I64, 1), builder.const(I64, 2))
            builder.sec_assert(cond, "canary")
            builder.ret(builder.const(I64, 0))

        result = CPU(build_main(body)).run()
        assert result.status == "canary_trap"
        assert isinstance(result.trap, CanaryTrap)

    def test_dfi_trap(self):
        def body(builder, module, f):
            slot = builder.alloca(I64, name="slot")
            builder.store(builder.const(I64, 1), slot)
            builder.dfi_setdef(slot, 9, 8)
            builder.dfi_chkdef(slot, frozenset({4}), 8)  # 9 not allowed
            builder.ret(builder.const(I64, 0))

        result = CPU(build_main(body)).run()
        assert result.status == "dfi_trap"
        assert isinstance(result.trap, DfiTrap)

    def test_dfi_pass_when_allowed(self):
        def body(builder, module, f):
            slot = builder.alloca(I64, name="slot")
            builder.store(builder.const(I64, 1), slot)
            builder.dfi_setdef(slot, 9, 8)
            builder.dfi_chkdef(slot, frozenset({9}), 8)
            builder.ret(builder.const(I64, 0))

        assert CPU(build_main(body)).run().ok

    def test_step_limit(self):
        source = "int main() { while (1) { } return 0; }"
        module = compile_source(source)
        result = CPU(module, max_steps=1000).run()
        assert result.status == "limit"
        assert isinstance(result.trap, StepLimitExceeded)


class TestPacExecution:
    def test_sign_auth_roundtrip_in_program(self):
        def body(builder, module, f):
            slot = builder.alloca(I64, name="slot")
            modifier = builder.cast("ptrtoint", slot, I64)
            signed = builder.pac_sign(builder.const(I64, 42), modifier)
            builder.store(signed, slot)
            loaded = builder.load(slot)
            auth = builder.pac_auth(loaded, modifier)
            builder.ret(auth)

        result = CPU(build_main(body)).run()
        assert result.ok and result.return_value == 42
        assert result.pa_dynamic == 2

    def test_tampered_slot_fails_auth(self):
        def body(builder, module, f):
            slot = builder.alloca(I64, name="slot")
            modifier = builder.cast("ptrtoint", slot, I64)
            signed = builder.pac_sign(builder.const(I64, 42), modifier)
            builder.store(signed, slot)
            # attacker-style raw byte write over the slot
            byte_view = builder.cast("bitcast", slot, pointer(I8))
            builder.store(builder.const(I8, 0x7), byte_view)
            loaded = builder.load(slot)
            builder.pac_auth(loaded, modifier)
            builder.ret(builder.const(I64, 0))

        assert CPU(build_main(body)).run().status == "pac_trap"


class TestCounters:
    def test_ic_calls_counted(self, listing1_module):
        cpu = CPU(listing1_module)
        result = cpu.run(inputs=[b"x"])
        assert result.ic_calls.get("gets") == 1
        assert result.ic_calls.get("strcpy") == 1
        assert result.ic_calls.get("printf") == 1

    def test_deterministic_across_runs(self, listing1_module):
        a = CPU(listing1_module, seed=5).run(inputs=[b"x"])
        b = CPU(listing1_module, seed=5).run(inputs=[b"x"])
        assert a.cycles == b.cycles
        assert a.output == b.output
        assert a.instructions == b.instructions

    def test_stack_slot_address_visible_during_run(self, listing1_module):
        seen = {}

        class Probe:
            def payload_for(self, cpu, channel, args):
                if channel == "gets":
                    seen["str"] = cpu.stack_slot_address("str")
                    seen["user"] = cpu.stack_slot_address("user")
                return None

        CPU(listing1_module, attack=Probe()).run(inputs=[b"x"])
        assert seen["str"] is not None and seen["user"] is not None
        assert seen["user"] - seen["str"] == 16  # adjacent arrays


class TestDfiShadow:
    """The bulk range/batch operations on the DFI definitions table."""

    def _shadow(self):
        from repro.hardware.cpu import DFI_EXTERNAL_WRITER, DfiShadow

        return DfiShadow(), DFI_EXTERNAL_WRITER

    def test_set_range_covers_every_byte(self):
        shadow, _ = self._shadow()
        shadow.set_range(0x1000, 8, def_id=3)
        assert len(shadow) == 8
        for offset in range(8):
            assert shadow[0x1000 + offset] == 3

    def test_check_range_reports_first_violating_byte(self):
        shadow, external = self._shadow()
        shadow.set_range(0x1000, 8, def_id=3)
        shadow.set_range(0x1004, 2, def_id=9)
        allowed = frozenset({3})
        assert shadow.check_range(0x1000, 4, allowed) is None
        assert shadow.check_range(0x1000, 8, allowed) == (0x1004, 9)
        # Untouched bytes read as the external writer.
        assert shadow.check_range(0x2000, 1, allowed) == (0x2000, external)

    def test_check_batch_mixes_const_and_frame_pointers(self):
        shadow, _ = self._shadow()
        shadow.set_range(0x1000, 8, def_id=3)
        shadow.set_range(0x2000, 4, def_id=5)
        frame = {"p": 0x2000}
        allowed3 = frozenset({3})
        allowed5 = frozenset({5})
        specs = (
            (True, 0x1000, 8, allowed3),
            (False, "p", 4, allowed5),
        )
        assert shadow.check_batch(specs, frame) is None
        # Poison one byte in the middle of the second run: the batch
        # reports the element index and the exact violating byte.
        shadow[0x2002] = 7
        assert shadow.check_batch(specs, frame) == (1, 0x2002, 7, allowed5)

    def test_check_batch_stops_at_first_violation(self):
        shadow, external = self._shadow()
        allowed = frozenset({1})
        specs = (
            (True, 0x1000, 1, allowed),
            (True, 0x2000, 1, allowed),
        )
        assert shadow.check_batch(specs, {}) == (0, 0x1000, external, allowed)

    def test_set_range_fault_hook_exempts_external_writer(self):
        shadow, external = self._shadow()

        class Hook:
            def __init__(self):
                self.calls = []

            def on_dfi_setdef(self, address, size, def_id):
                self.calls.append((address, size, def_id))
                return def_id + 100

        hook = Hook()
        shadow.fault_hook = hook
        shadow.set_range(0x1000, 2, def_id=3)
        shadow.set_range(0x2000, 2, def_id=external)
        assert hook.calls == [(0x1000, 2, 3)]
        assert shadow[0x1000] == 103
        assert shadow[0x2000] == external
