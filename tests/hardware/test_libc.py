"""Tests for the C library models."""

import pytest

from repro.hardware.libc import LIBRARY
from tests.conftest import run_minic


class TestRegistry:
    def test_six_ic_categories_present(self):
        kinds = {lib.ic_kind for lib in LIBRARY.values() if lib.ic_kind}
        assert kinds == {"print", "scan", "movecopy", "get", "put", "map"}

    def test_write_effects(self):
        assert LIBRARY["strcpy"].writes_args == (0,)
        assert LIBRARY["read"].writes_args == (1,)
        assert LIBRARY["scanf"].writes_varargs
        assert LIBRARY["mmap"].writes_return

    def test_read_effects(self):
        assert LIBRARY["strncmp"].reads_args == (0, 1)
        assert LIBRARY["strcpy"].reads_args == (1,)
        assert LIBRARY["printf"].reads_varargs

    def test_non_ic_utilities(self):
        for name in ("strlen", "strcmp", "malloc", "free", "pythia_random"):
            assert LIBRARY[name].ic_kind is None


class TestStringFunctions:
    def test_strcpy(self):
        src = 'int main() { char d[16]; strcpy(d, "abc"); return strlen(d); }'
        assert run_minic(src).return_value == 3

    def test_strcpy_has_no_bounds(self):
        # 8-byte buffer, 12-byte source: silently overflows
        src = """
        int main() {
            char d[8];
            char e[8];
            strcpy(d, "0123456789AB");
            return e[0];
        }
        """
        result = run_minic(src)
        assert result.ok
        assert result.return_value == ord("8")

    def test_strncpy_pads_and_limits(self):
        src = 'int main() { char d[8]; strncpy(d, "abcdef", 3); return d[2]; }'
        assert run_minic(src).return_value == ord("c")

    def test_strcat(self):
        src = """
        int main() {
            char d[16];
            strcpy(d, "ab");
            strcat(d, "cd");
            return strlen(d);
        }
        """
        assert run_minic(src).return_value == 4

    def test_strcmp_orders(self):
        assert run_minic('int main() { return strcmp("abc", "abc"); }').return_value == 0
        assert run_minic('int main() { return strcmp("abd", "abc"); }').return_value == 1

    def test_strncmp_prefix(self):
        src = 'int main() { return strncmp("adminXYZ", "admin", 5); }'
        assert run_minic(src).return_value == 0

    def test_strlen(self):
        assert run_minic('int main() { return strlen("hello"); }').return_value == 5

    def test_atoi(self):
        src = 'int main() { return atoi("123"); }'
        assert run_minic(src).return_value == 123


class TestMemoryFunctions:
    def test_memcpy(self):
        src = """
        int main() {
            char a[8];
            char b[8];
            strcpy(a, "xyz");
            memcpy(b, a, 4);
            return b[1];
        }
        """
        assert run_minic(src).return_value == ord("y")

    def test_memset(self):
        src = "int main() { char a[8]; memset(a, 65, 4); return a[3]; }"
        assert run_minic(src).return_value == 65

    def test_malloc_free(self):
        src = """
        int main() {
            int *p;
            p = malloc(32);
            p[2] = 7;
            free(p);
            return 7;
        }
        """
        assert run_minic(src).return_value == 7

    def test_calloc_zeroes(self):
        src = """
        int main() {
            int *p;
            p = calloc(4, 8);
            return p[3];
        }
        """
        assert run_minic(src).return_value == 0

    def test_mmap_returns_heap_region(self):
        src = "int main() { char *m; m = mmap(64); m[0] = 1; return m[0]; }"
        assert run_minic(src).return_value == 1


class TestInputOutput:
    def test_gets_reads_queue(self):
        src = "int main() { char b[16]; gets(b); return strlen(b); }"
        assert run_minic(src, inputs=[b"abcd"]).return_value == 4

    def test_gets_empty_queue(self):
        src = "int main() { char b[16]; gets(b); return strlen(b); }"
        assert run_minic(src).return_value == 0

    def test_fgets_respects_limit(self):
        src = "int main() { char b[8]; fgets(b, 4, NULL); return strlen(b); }"
        assert run_minic(src, inputs=[b"abcdefgh"]).return_value == 3

    def test_scanf_d(self):
        src = 'int main() { int x = 0; scanf("%d", &x); return x; }'
        assert run_minic(src, inputs=[b"37"]).return_value == 37

    def test_scanf_bad_int_is_zero(self):
        src = 'int main() { int x = 9; scanf("%d", &x); return x; }'
        assert run_minic(src, inputs=[b"zz"]).return_value == 0

    def test_printf_formats(self):
        src = 'int main() { printf("a=%d s=%s c=%c%%\\n", 5, "hi", 33); return 0; }'
        result = run_minic(src)
        assert result.output == b"a=5 s=hi c=!%\n"

    def test_printf_negative(self):
        src = 'int main() { printf("%d", 0 - 7); return 0; }'
        assert run_minic(src).output == b"-7"

    def test_puts(self):
        src = 'int main() { puts("hello"); return 0; }'
        assert run_minic(src).output == b"hello\n"

    def test_sprintf_writes_memory(self):
        src = """
        int main() {
            char b[24];
            sprintf(b, "v=%d", 42);
            return strlen(b);
        }
        """
        assert run_minic(src).return_value == 4

    def test_exit(self):
        src = "int main() { exit(3); return 0; }"
        result = run_minic(src)
        assert result.ok and result.return_value == 3

    def test_pythia_random_is_deterministic(self):
        src = "int main() { return pythia_random() == pythia_random(); }"
        assert run_minic(src).return_value == 0  # consecutive values differ

    def test_secure_malloc_isolated(self):
        src = """
        int main() {
            char *a;
            char *b;
            a = malloc(16);
            b = pythia_secure_malloc(16);
            return b > a;
        }
        """
        result = run_minic(src)
        assert result.return_value == 1
        assert result.isolated_allocations == 1
