"""Tests for the set-associative cache model and its CPU hook."""

import pytest

from repro.frontend import compile_source
from repro.hardware import CPU, CacheModel


class TestCacheModel:
    def test_cold_miss_then_hit(self):
        cache = CacheModel()
        assert cache.access(0x1000) == 1
        assert cache.access(0x1000) == 0
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_shares(self):
        cache = CacheModel(line_bytes=64)
        cache.access(0x1000)
        assert cache.access(0x1008) == 0  # same 64B line

    def test_straddling_access_touches_two_lines(self):
        cache = CacheModel(line_bytes=64)
        assert cache.access(0x103C, size=8) == 2

    def test_lru_eviction(self):
        cache = CacheModel(size_bytes=2 * 64, line_bytes=64, associativity=2)
        # one set, two ways
        cache.access(0 * 64)
        cache.access(1 * 64)
        cache.access(2 * 64)  # evicts line 0
        assert cache.access(1 * 64) == 0  # still resident
        assert cache.access(0 * 64) == 1  # was evicted

    def test_lru_refresh_on_hit(self):
        cache = CacheModel(size_bytes=2 * 64, line_bytes=64, associativity=2)
        cache.access(0 * 64)
        cache.access(1 * 64)
        cache.access(0 * 64)  # refresh line 0
        cache.access(2 * 64)  # evicts line 1 (LRU)
        assert cache.access(0 * 64) == 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheModel(size_bytes=1000, line_bytes=64, associativity=8)

    def test_miss_rate(self):
        cache = CacheModel()
        assert cache.miss_rate == 0.0
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == pytest.approx(0.5)

    def test_reset(self):
        cache = CacheModel()
        cache.access(0)
        cache.reset()
        assert cache.accesses == 0
        assert cache.access(0) == 1  # cold again


class TestCpuIntegration:
    SEQUENTIAL = """
    int main() {
        int a[64];
        int t = 0;
        for (int r = 0; r < 4; r = r + 1) {
            for (int i = 0; i < 64; i = i + 1) { a[i] = i; }
            for (int i = 0; i < 64; i = i + 1) { t = t + a[i]; }
        }
        return t & 1023;
    }
    """

    def test_disabled_by_default(self):
        module = compile_source(self.SEQUENTIAL)
        result = CPU(module).run()
        assert result.cache_hits == 0 and result.cache_misses == 0

    def test_sequential_locality(self):
        module = compile_source(self.SEQUENTIAL)
        result = CPU(module, cache=CacheModel()).run()
        assert result.ok
        assert result.cache_hits > result.cache_misses * 5  # strong locality

    def test_misses_cost_cycles(self):
        module = compile_source(self.SEQUENTIAL)
        plain = CPU(module).run()
        cached = CPU(module, cache=CacheModel(miss_penalty=50)).run()
        assert cached.cycles > plain.cycles
        assert cached.opcode_counts.get("llc.miss", 0) > 0

    def test_results_unchanged_by_cache(self):
        module = compile_source(self.SEQUENTIAL)
        plain = CPU(module).run()
        cached = CPU(module, cache=CacheModel()).run()
        assert plain.return_value == cached.return_value
        assert plain.output == cached.output

    def test_instrumentation_adds_misses(self):
        """§6.1: extra instructions lead to additional cache traffic."""
        from repro.core import protect
        from tests.conftest import LISTING1_SOURCE

        module = compile_source(LISTING1_SOURCE)
        vanilla = protect(module, scheme="vanilla")
        cpa = protect(module, scheme="cpa")
        rv = CPU(vanilla.module, cache=CacheModel()).run(inputs=[b"x"])
        rc = CPU(cpa.module, cache=CacheModel()).run(inputs=[b"x"])
        assert rc.cache_misses >= rv.cache_misses
