"""Tests for the sectioned heap allocator."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.hardware.allocator import HeapAllocator, OutOfMemoryError, SectionedHeap
from repro.hardware.memory import (
    HEAP_ISOLATED_BASE,
    HEAP_SHARED_BASE,
    Memory,
    MemoryFault,
)


@pytest.fixture
def heap():
    return SectionedHeap(Memory(), capacity=1 << 20)


class TestHeapAllocator:
    def _arena(self, capacity=1 << 20):
        return HeapAllocator(Memory(), HEAP_SHARED_BASE, capacity, "test")

    def test_alignment(self):
        arena = self._arena()
        for size in (1, 7, 16, 33):
            assert arena.malloc(size) % 16 == 0  # glibc-style alignment

    def test_distinct_chunks(self):
        arena = self._arena()
        a = arena.malloc(16)
        b = arena.malloc(16)
        assert abs(a - b) >= 32  # payload + header

    def test_header_records_size(self):
        arena = self._arena()
        a = arena.malloc(20)
        assert arena.memory.read_int(a - 16, 8) == 32  # aligned payload

    def test_free_and_reuse(self):
        arena = self._arena()
        a = arena.malloc(32)
        arena.free(a)
        b = arena.malloc(32)
        assert b == a  # bin reuse

    def test_free_larger_chunk_reused_for_smaller(self):
        arena = self._arena()
        a = arena.malloc(128)
        arena.free(a)
        b = arena.malloc(16)
        assert b == a

    def test_split_remainder_reused(self):
        arena = self._arena()
        a = arena.malloc(128)
        arena.free(a)
        arena.malloc(16)
        c = arena.malloc(16)
        # the split tail of the 128-byte chunk serves the second request
        assert c < a + 128 + 16

    def test_double_free_rejected(self):
        arena = self._arena()
        a = arena.malloc(16)
        arena.free(a)
        with pytest.raises(MemoryFault):
            arena.free(a)

    def test_invalid_free_rejected(self):
        arena = self._arena()
        with pytest.raises(MemoryFault):
            arena.free(HEAP_SHARED_BASE + 1234)

    def test_out_of_memory(self):
        arena = self._arena(capacity=256)
        with pytest.raises(OutOfMemoryError):
            for _ in range(64):
                arena.malloc(64)

    def test_coalescing_forward(self):
        arena = self._arena()
        a = arena.malloc(16)
        b = arena.malloc(16)
        arena.free(b)
        arena.free(a)  # should coalesce with b
        big = arena.malloc(40)  # only fits the coalesced chunk
        assert big == a

    def test_stats(self):
        arena = self._arena()
        a = arena.malloc(16)
        assert arena.bytes_in_use == 16
        assert arena.peak_bytes == 16
        arena.free(a)
        assert arena.bytes_in_use == 0
        assert arena.malloc_calls == 1 and arena.free_calls == 1

    def test_chunk_size_query(self):
        arena = self._arena()
        a = arena.malloc(24)
        assert arena.chunk_size(a) == 32
        assert arena.chunk_size(a + 8) is None

    def test_zero_size_allocates(self):
        arena = self._arena()
        assert arena.malloc(0) > 0


class TestSectionedHeap:
    def test_sections_are_disjoint(self, heap):
        shared = heap.malloc(16)
        isolated = heap.malloc(16, isolated=True)
        assert heap.section_of(shared) == "shared"
        assert heap.section_of(isolated) == "isolated"
        assert abs(shared - isolated) > 1 << 24

    def test_isolation_property(self, heap):
        """Isolated allocations are unreachable from any shared chunk by
        contiguous overflow -- the Algorithm 4 guarantee."""
        shared = heap.malloc(64)
        isolated = heap.malloc(64, isolated=True)
        shared_segment = heap.shared.base + heap.shared.capacity
        assert shared + 64 < shared_segment < isolated

    def test_free_routes_by_address(self, heap):
        shared = heap.malloc(16)
        isolated = heap.malloc(16, isolated=True)
        heap.free(isolated)
        heap.free(shared)
        assert heap.shared.free_calls == 1
        assert heap.isolated.free_calls == 1

    def test_isolated_call_counter(self, heap):
        heap.malloc(8)
        heap.malloc(8, isolated=True)
        heap.malloc(8, isolated=True)
        assert heap.isolated_calls == 2

    def test_section_of_non_heap(self, heap):
        with pytest.raises(MemoryFault):
            heap.section_of(0x1000)


class TestAllocatorProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 256), st.booleans()), min_size=1, max_size=60
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_live_chunks_never_overlap(self, requests):
        """No two live chunks (in the same section) ever overlap."""
        heap = SectionedHeap(Memory(), capacity=1 << 20)
        live = []
        for size, isolated in requests:
            address = heap.malloc(size, isolated=isolated)
            arena = heap.isolated if isolated else heap.shared
            payload = arena.chunk_size(address)
            for other, other_end in live:
                assert address >= other_end or address + payload <= other
            live.append((address, address + payload))

    @given(st.lists(st.integers(1, 128), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_alloc_free_alloc_accounting(self, sizes):
        heap = SectionedHeap(Memory(), capacity=1 << 20)
        addresses = [heap.malloc(size) for size in sizes]
        for address in addresses:
            heap.free(address)
        assert heap.shared.bytes_in_use == 0

    @given(st.lists(st.integers(1, 64), min_size=2, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_data_integrity_across_allocations(self, sizes):
        """Data written to one chunk survives later allocations."""
        heap = SectionedHeap(Memory(), capacity=1 << 20)
        memory = heap.shared.memory
        written = []
        for i, size in enumerate(sizes):
            address = heap.malloc(size)
            pattern = bytes([i & 0xFF]) * size
            memory.write_bytes(address, pattern)
            written.append((address, pattern))
        for address, pattern in written:
            assert memory.read_bytes(address, len(pattern)) == pattern
