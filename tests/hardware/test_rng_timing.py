"""Tests for the canary RNG and the timing model."""

import pytest

from repro.hardware.rng import CanaryRng
from repro.hardware.timing import (
    DEFAULT_COSTS,
    HEAP_SECTIONING_CYCLES,
    RNG_CALL_CYCLES,
    TimingModel,
)


class TestCanaryRng:
    def test_deterministic_per_seed(self):
        a = CanaryRng(7)
        b = CanaryRng(7)
        assert [a.next_u64() for _ in range(5)] == [b.next_u64() for _ in range(5)]

    def test_different_seeds_diverge(self):
        assert CanaryRng(1).next_u64() != CanaryRng(2).next_u64()

    def test_zero_seed_handled(self):
        assert CanaryRng(0).next_u64() != 0

    def test_canary_low_byte_zero(self):
        rng = CanaryRng(9)
        for _ in range(50):
            assert rng.next_canary() & 0xFF == 0

    def test_call_counter(self):
        rng = CanaryRng(1)
        rng.next_u64()
        rng.next_canary()
        assert rng.calls == 2

    def test_values_fit_64_bits(self):
        rng = CanaryRng(3)
        for _ in range(100):
            assert 0 <= rng.next_u64() < 2**64


class TestTimingModel:
    def test_charge_accumulates(self):
        timing = TimingModel()
        timing.charge("load")
        assert timing.instructions == 1
        assert timing.cycles == DEFAULT_COSTS["load"]

    def test_multi_issue_of_cheap_ops(self):
        timing = TimingModel(issue_width=4)
        for _ in range(4):
            timing.charge("add")
        assert timing.cycles == 1  # four adds retire in one cycle

    def test_partial_issue_group_free_until_filled(self):
        timing = TimingModel(issue_width=4)
        timing.charge("add")
        timing.charge("add")
        assert timing.cycles == 0
        timing.charge("load")  # expensive op flushes the group
        assert timing.cycles == DEFAULT_COSTS["load"]

    def test_expensive_op_resets_group(self):
        timing = TimingModel(issue_width=4)
        timing.charge("add")
        timing.charge("mul")
        timing.charge("add")
        timing.charge("add")
        timing.charge("add")
        # mul charged fully; the three adds after it have not filled a group
        assert timing.cycles == DEFAULT_COSTS["mul"]

    def test_opcode_counts(self):
        timing = TimingModel()
        timing.charge("add")
        timing.charge("add")
        timing.charge("load")
        assert timing.opcode_counts == {"add": 2, "load": 1}

    def test_charge_cycles(self):
        timing = TimingModel()
        timing.charge_cycles(HEAP_SECTIONING_CYCLES, "lib.secure_malloc")
        assert timing.cycles == HEAP_SECTIONING_CYCLES
        assert timing.opcode_counts["lib.secure_malloc"] == 1

    def test_charge_libcall_scales_with_bytes(self):
        a = TimingModel()
        b = TimingModel()
        a.charge_libcall(0)
        b.charge_libcall(400)
        assert b.cycles > a.cycles

    def test_ipc(self):
        timing = TimingModel()
        for _ in range(8):
            timing.charge("add")
        assert timing.ipc == pytest.approx(8 / 2)

    def test_ipc_empty(self):
        assert TimingModel().ipc == 0.0

    def test_unknown_opcode_costs_one(self):
        timing = TimingModel(issue_width=1)
        timing.charge("mystery")
        assert timing.cycles == 1

    def test_snapshot(self):
        timing = TimingModel()
        timing.charge("load")
        snap = timing.snapshot()
        assert snap["instructions"] == 1 and snap["cycles"] == DEFAULT_COSTS["load"]

    def test_pa_costs_defined(self):
        assert DEFAULT_COSTS["pac.sign"] >= 1
        assert DEFAULT_COSTS["pac.auth"] >= 1
        assert DEFAULT_COSTS["dfi.chkdef"] > DEFAULT_COSTS["pac.auth"]

    def test_rng_call_cost_positive(self):
        assert RNG_CALL_CYCLES > 0
