"""Tests for the segmented byte-addressable memory."""

import pytest

from repro.hardware.memory import (
    GLOBAL_BASE,
    HEAP_ISOLATED_BASE,
    HEAP_SHARED_BASE,
    Memory,
    MemoryFault,
    STACK_BASE,
)


@pytest.fixture
def mem():
    return Memory()


class TestSegments:
    def test_four_segments(self, mem):
        names = [s.name for s in mem.segments]
        assert names == ["globals", "stack", "heap", "isolated"]

    def test_segment_lookup(self, mem):
        assert mem.segment_for(STACK_BASE + 100).name == "stack"
        assert mem.segment_for(HEAP_ISOLATED_BASE).name == "isolated"

    def test_segment_named(self, mem):
        assert mem.segment_named("heap").base == HEAP_SHARED_BASE
        with pytest.raises(KeyError):
            mem.segment_named("rodata")

    def test_unmapped_address_faults(self, mem):
        with pytest.raises(MemoryFault):
            mem.read_bytes(0x0, 1)

    def test_cross_segment_access_faults(self, mem):
        last = mem.segments[0].base + mem.segments[0].capacity - 4
        with pytest.raises(MemoryFault):
            mem.read_bytes(last, 16)


class TestRawAccess:
    def test_write_read_roundtrip(self, mem):
        mem.write_bytes(STACK_BASE + 8, b"hello")
        assert mem.read_bytes(STACK_BASE + 8, 5) == b"hello"

    def test_zero_initialised(self, mem):
        assert mem.read_bytes(STACK_BASE + 1024, 8) == b"\x00" * 8

    def test_empty_write_is_noop(self, mem):
        mem.write_bytes(0x0, b"")  # would fault if attempted

    def test_flat_within_segment(self, mem):
        """Writes past an object silently hit adjacent data -- the
        property the whole attack surface depends on."""
        mem.write_bytes(STACK_BASE + 16, b"A" * 32)
        assert mem.read_bytes(STACK_BASE + 40, 4) == b"AAAA"

    def test_counters(self, mem):
        mem.write_bytes(STACK_BASE, b"x")
        mem.read_bytes(STACK_BASE, 1)
        assert mem.writes == 1 and mem.reads == 1


class TestTypedAccess:
    def test_int_roundtrip(self, mem):
        mem.write_int(STACK_BASE, 0xDEADBEEF, 8)
        assert mem.read_int(STACK_BASE, 8) == 0xDEADBEEF

    def test_little_endian(self, mem):
        mem.write_int(STACK_BASE, 0x0102, 2)
        assert mem.read_bytes(STACK_BASE, 2) == b"\x02\x01"

    def test_write_int_masks(self, mem):
        mem.write_int(STACK_BASE, 0x1FF, 1)
        assert mem.read_int(STACK_BASE, 1) == 0xFF

    def test_sizes(self, mem):
        for size in (1, 2, 4, 8):
            value = (1 << (8 * size)) - 3
            mem.write_int(STACK_BASE + 64, value, size)
            assert mem.read_int(STACK_BASE + 64, size) == value


class TestCStrings:
    def test_roundtrip(self, mem):
        mem.write_cstring(GLOBAL_BASE + 32, b"admin")
        assert mem.read_cstring(GLOBAL_BASE + 32) == b"admin"

    def test_terminator_written(self, mem):
        mem.write_cstring(GLOBAL_BASE + 32, b"ab")
        assert mem.read_bytes(GLOBAL_BASE + 32, 3) == b"ab\x00"

    def test_empty(self, mem):
        mem.write_cstring(GLOBAL_BASE, b"")
        assert mem.read_cstring(GLOBAL_BASE) == b""

    def test_limit(self, mem):
        mem.write_bytes(STACK_BASE, b"x" * 64)
        assert len(mem.read_cstring(STACK_BASE, limit=16)) == 16


class TestIntFastPaths:
    """The struct-codec int paths must behave exactly like the general
    byte-string path -- including near segment boundaries and under a
    fault hook (which forces the payload-materialising slow path)."""

    def test_all_codec_sizes_roundtrip(self, mem):
        for size in (1, 2, 4, 8):
            value = (0x0123456789ABCDEF >> (8 * (8 - size))) & ((1 << (8 * size)) - 1)
            mem.write_int(STACK_BASE + 128, value, size)
            assert mem.read_int(STACK_BASE + 128, size) == value
            assert mem.read_bytes(STACK_BASE + 128, size) == value.to_bytes(
                size, "little"
            )

    def test_odd_size_uses_generic_path(self, mem):
        mem.write_int(STACK_BASE, 0x010203, 3)
        assert mem.read_int(STACK_BASE, 3) == 0x010203
        assert mem.read_bytes(STACK_BASE, 3) == b"\x03\x02\x01"

    def test_write_past_capacity_faults(self):
        mem = Memory(segment_size=64)
        with pytest.raises(MemoryFault):
            mem.write_int(STACK_BASE + 60, 1, 8)
        with pytest.raises(MemoryFault):
            mem.read_int(STACK_BASE + 60, 8)

    def test_last_full_word_before_capacity(self):
        mem = Memory(segment_size=64)
        mem.write_int(STACK_BASE + 56, 0xDEADBEEFCAFEF00D, 8)
        assert mem.read_int(STACK_BASE + 56, 8) == 0xDEADBEEFCAFEF00D

    def test_fault_hook_sees_codec_sized_writes(self, mem):
        class Recorder:
            def __init__(self):
                self.writes = []

            def on_memory_write(self, address, payload):
                self.writes.append((address, payload))
                return payload

        hook = Recorder()
        mem.fault_hook = hook
        mem.write_int(STACK_BASE, 0xAABBCCDD, 4)
        # The hook path materialises the exact little-endian payload the
        # fast path would have packed in place.
        assert hook.writes == [(STACK_BASE, b"\xdd\xcc\xbb\xaa")]
        assert mem.read_int(STACK_BASE, 4) == 0xAABBCCDD

    def test_fault_hook_transform_is_honoured(self, mem):
        class Flipper:
            def on_memory_write(self, address, payload):
                return bytes(b ^ 0xFF for b in payload)

        mem.fault_hook = Flipper()
        mem.write_int(STACK_BASE, 0x00000000, 4)
        mem.fault_hook = None
        assert mem.read_int(STACK_BASE, 4) == 0xFFFFFFFF


class TestCStringEdges:
    def test_implicit_nul_at_data_edge(self, mem):
        # No NUL inside the materialised bytes: the unmaterialised tail
        # is all zeros, so the string terminates at the data's edge.
        mem.write_bytes(GLOBAL_BASE, b"abc")
        assert mem.read_cstring(GLOBAL_BASE) == b"abc"

    def test_limit_exactly_at_nul(self, mem):
        mem.write_cstring(STACK_BASE, b"abcd")
        assert mem.read_cstring(STACK_BASE, limit=4) == b"abcd"

    def test_unterminated_at_capacity_faults(self):
        mem = Memory(segment_size=64)
        mem.write_bytes(STACK_BASE + 56, b"\xff" * 8)
        with pytest.raises(MemoryFault):
            mem.read_cstring(STACK_BASE + 56)

    def test_limit_stops_before_capacity_fault(self):
        mem = Memory(segment_size=64)
        mem.write_bytes(STACK_BASE + 56, b"\xff" * 8)
        assert mem.read_cstring(STACK_BASE + 56, limit=8) == b"\xff" * 8
