#!/usr/bin/env python3
"""The nginx experiment of §6.3: transfer-rate degradation.

Serves increasing request batches (the paper's 3 s / 30 s / 300 s runs)
through the nginx-style event-loop workload under every scheme and
reports transfer-rate degradation -- the paper measures CPA at ~49% and
Pythia at ~20%.
"""

from repro import run_nginx
from repro.workloads import transfer_rate_overhead


def main() -> None:
    runs = run_nginx(durations=("3s", "30s"))
    print(f"{'scheme':8s} {'duration':>8s} {'cycles':>12s} {'rate (B/cyc)':>13s}")
    print("-" * 46)
    for run in runs:
        print(
            f"{run.scheme:8s} {run.duration:>8s} {run.cycles:12.0f} "
            f"{run.transfer_rate:13.4f}"
        )
    print("-" * 46)
    for scheme in ("cpa", "pythia", "dfi"):
        degradation = transfer_rate_overhead(runs, scheme)
        print(f"{scheme:8s} transfer-rate degradation: {100 * degradation:5.1f}%")


if __name__ == "__main__":
    main()
