#!/usr/bin/env python3
"""Listing 3 and the §3 pointer-misdirection attack class.

Two variants of the pointer/array-dualism attack:

- ``pointer_dualism``: the input channel *overflows* into the stride,
  ``p = arr + stride`` then aliases the branch variable.  Pythia's
  canary (placed right after the input buffer) detects the overflow
  immediately after the input channel, exactly as §6.3 describes.

- ``pointer_misdirection``: no overflow at all -- the attacker supplies
  a perfectly legal integer and every dataflow step is legal C.  Only
  the conservative CPA scheme (object-granular value signing) catches
  the forged write; canaries never see a crossing and DFI's
  over-approximated "wild" stores are allowed everywhere.
"""

from repro import SCHEMES, build_scenarios, protect


def run(name: str) -> None:
    scenario = build_scenarios()[name]
    print(f"\n== {name}: {scenario.description}")
    module = scenario.compile()
    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        attacked = scenario.run_attack(protected.module)
        outcome = scenario.attack_outcome(attacked)
        print(f"  {scheme:8s} -> {outcome}")


def main() -> None:
    run("pointer_dualism")
    run("pointer_misdirection")
    print(
        "\nThe overflow variant is caught by every defense; the pure-"
        "dataflow variant only by the conservative scheme (§4.2's "
        "completeness claim)."
    )


if __name__ == "__main__":
    main()
