#!/usr/bin/env python3
"""Listing 1 of the paper: string-buffer overflow -> privilege escalation.

Runs the paper's motivating example under all four schemes and prints
the detection matrix: the attack flips the ``strncmp(user, "admin")``
check under vanilla execution; CPA, Pythia and DFI each stop it with
their own mechanism (guard-word authentication, canary authentication,
runtime definitions table).
"""

from repro import SCHEMES, CPU, build_scenarios, protect


def main() -> None:
    scenario = build_scenarios()["privilege_escalation"]
    print(scenario.description)
    print("-" * 72)
    module = scenario.compile()

    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        benign = scenario.run_benign(protected.module)
        attacked = scenario.run_attack(protected.module)
        outcome = scenario.attack_outcome(attacked)
        detail = f" ({attacked.trap})" if attacked.trap else ""
        print(
            f"{scheme:8s} pa_instrs={protected.pa_static:3d} "
            f"benign={benign.status:6s} attack={outcome}{detail}"
        )
        assert benign.ok, f"{scheme}: benign run must succeed"

    print("-" * 72)
    print("vanilla bends to SUPERUSER; every defense scheme stops it.")


if __name__ == "__main__":
    main()
