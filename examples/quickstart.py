#!/usr/bin/env python3
"""Quickstart: compile a C program, protect it, run it, attack it.

This walks the full pipeline on a tiny vulnerable program:

1. compile MiniC source to the IR;
2. apply Pythia's defense (stack canaries + heap sectioning);
3. run the benign workload on the simulated ARM CPU;
4. replay the same program under attack and watch the canary trap.
"""

from repro import CPU, AttackController, compile_source, overflow_payload, protect

SOURCE = r"""
int main() {
    char name[16];
    char role[16];
    strcpy(role, "user");
    gets(name);                       // the vulnerable input channel
    printf("hello %s\n", name);
    if (strncmp(role, "root", 4) == 0) {
        printf("** privileged mode **\n");
        return 1;
    }
    return 0;
}
"""


def main() -> None:
    module = compile_source(SOURCE, name="quickstart")
    print(f"compiled: {module.instruction_count()} IR instructions")

    # -- protect with Pythia ------------------------------------------------
    protected = protect(module, scheme="pythia")
    stack_stats = protected.pass_stats.get("pythia-stack", {})
    print(
        f"pythia: {protected.pa_static} ARM-PA instructions, "
        f"{stack_stats.get('canaries', 0)} canaries inserted"
    )

    # -- benign run -----------------------------------------------------------
    result = CPU(protected.module).run(inputs=[b"alice"])
    print(f"benign: status={result.status} output={result.output!r}")
    assert result.ok and b"hello alice" in result.output

    # -- the attack: overflow name -> role, forging "root" ------------------------
    attack = AttackController().add(
        "gets", overflow_payload(b"eve", 16, b"root\x00")
    )
    attacked = CPU(protected.module, attack=attack).run()
    print(f"attack: status={attacked.status} ({attacked.trap})")
    assert attacked.detected, "Pythia should trap the overflow"

    # -- the same attack without protection succeeds -------------------------------
    vanilla = protect(module, scheme="vanilla")
    attack2 = AttackController().add(
        "gets", overflow_payload(b"eve", 16, b"root\x00")
    )
    bent = CPU(vanilla.module, attack=attack2).run()
    print(f"unprotected: status={bent.status} output={bent.output!r}")
    assert b"privileged" in bent.output, "control flow should have bent"
    print("quickstart OK: attack bends vanilla, Pythia detects it")


if __name__ == "__main__":
    main()
