#!/usr/bin/env python3
"""A miniature Fig. 4(a): runtime overhead across SPEC-profile workloads.

Generates four representative benchmark programs (the extremes of the
paper's characterisation), protects each under CPA and Pythia, executes
all of them on the simulated CPU, and prints the overhead table.  The
full 16-benchmark sweep lives in ``benchmarks/``.
"""

from repro import generate_program, get_profile, measure_program

BENCHMARKS = ["502.gcc_r", "519.lbm_r", "510.parest_r", "525.x264_r"]


def main() -> None:
    print(f"{'benchmark':16s} {'CPA':>8s} {'Pythia':>8s} {'PA(CPA)':>8s} {'PA(Py)':>7s}")
    print("-" * 52)
    for name in BENCHMARKS:
        program = generate_program(get_profile(name))
        measurement = measure_program(program, schemes=("vanilla", "cpa", "pythia"))
        print(
            f"{name:16s} "
            f"{100 * measurement.runtime_overhead('cpa'):7.1f}% "
            f"{100 * measurement.runtime_overhead('pythia'):7.1f}% "
            f"{measurement.pa_static('cpa'):8d} "
            f"{measurement.pa_static('pythia'):7d}"
        )
    print("-" * 52)
    print(
        "gcc (pointer/IC heavy) pays the most; lbm (compute-dense, no\n"
        "tainted data) the least -- and Pythia stays far below CPA\n"
        "everywhere, reproducing the paper's Fig. 4(a) shape."
    )


if __name__ == "__main__":
    main()
