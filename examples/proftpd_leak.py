#!/usr/bin/env python3
"""Listing 2 of the paper: the ProFTPd-style information leak.

The attacker corrupts the copy bound held in a session struct, the
"safe" ``sstrncpy`` trusts it, and the overflow check bends -- leaking
the private key.  The struct-field loads are exactly the
field-insensitive accesses DFI cannot reason about, so DFI *misses*
this attack while CPA and Pythia detect it.
"""

from repro import SCHEMES, build_scenarios, protect


def main() -> None:
    scenario = build_scenarios()["proftpd_leak"]
    print(scenario.description)
    print("-" * 72)
    module = scenario.compile()

    outcomes = {}
    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        attacked = scenario.run_attack(protected.module)
        outcomes[scheme] = scenario.attack_outcome(attacked)
        leaked = b"LEAK:" in attacked.output
        print(
            f"{scheme:8s} attack={outcomes[scheme]:9s} "
            f"key_leaked={'YES' if leaked else 'no '}"
        )

    print("-" * 72)
    assert outcomes["vanilla"] == "success", "the leak works unprotected"
    assert outcomes["cpa"] == "detected" and outcomes["pythia"] == "detected"
    assert outcomes["dfi"] == "success", (
        "DFI's field-insensitive analysis misses the struct corruption -- "
        "the weakness the paper's comparison hinges on"
    )
    print("CPA + Pythia detect; DFI (field-insensitive) misses -- as in §7.")


if __name__ == "__main__":
    main()
