#!/usr/bin/env python3
"""§6.4: intra-struct overflows and per-field canaries.

The paper's stated limitation: "Pythia cannot detect stack buffer
overflows resulting within objects such as sub-fields of a struct" --
and its proposed fix: "stack canaries must be inserted within
individual fields".  This example shows both halves: the base scheme
missing an overflow that never leaves the struct, and the opt-in
field-canary extension (``DefenseConfig(protect_fields=True)``)
catching it.
"""

from repro import AttackController, CPU, compile_source, overflow_payload, protect
from repro.core import DefenseConfig

SOURCE = r"""
struct account { char name[16]; int privilege; };

int main() {
    struct account acct;
    acct.privilege = 0;
    gets(acct.name);                  // overflows INSIDE the struct
    if (acct.privilege > 0) {
        printf("** ADMIN **\n");
        return 1;
    }
    printf("user %s\n", acct.name);
    return 0;
}
"""


def main() -> None:
    module = compile_source(SOURCE, name="intra-struct")
    attack = lambda: AttackController().add(
        "gets", overflow_payload(b"eve", 16, (9).to_bytes(8, "little"))
    )

    configs = [
        ("vanilla", DefenseConfig(scheme="vanilla")),
        ("pythia (base)", DefenseConfig(scheme="pythia")),
        ("pythia + field canaries", DefenseConfig(scheme="pythia", protect_fields=True)),
    ]
    print(f"{'configuration':26s} {'benign':>8s} {'attack':>10s}")
    print("-" * 48)
    outcomes = {}
    for label, config in configs:
        protected = protect(module, config=config)
        benign = CPU(protected.module).run(inputs=[b"alice"])
        attacked = CPU(protected.module, attack=attack()).run()
        outcome = (
            "detected"
            if attacked.detected
            else ("bent!" if b"ADMIN" in attacked.output else "prevented")
        )
        outcomes[label] = outcome
        print(f"{label:26s} {benign.status:>8s} {outcome:>10s}")
        assert benign.ok

    print("-" * 48)
    assert outcomes["vanilla"] == "bent!"
    assert outcomes["pythia (base)"] == "bent!"  # the §6.4 limitation
    assert outcomes["pythia + field canaries"] == "detected"
    print(
        "The overflow stays inside the struct, so the per-object canary\n"
        "never sees it -- interleaved field canaries do."
    )


if __name__ == "__main__":
    main()
