"""§4.4 Eq. 6: brute-force probability against re-randomised canaries.

Paper: with a 24-bit PAC and per-invocation re-randomisation, a single
guess succeeds with probability ~1/16.7M per canary, attempts form a
geometric variable, and the expected number of tries is 2^24.
"""

import math

from repro.attacks import (
    empirical_success_rate,
    expected_tries,
    first_order_probability,
    simulate_bruteforce,
    success_probability,
)

from conftest import print_table


def test_bruteforce_model(benchmark):
    rows = []
    for bits in (8, 12, 16, 24):
        closed = success_probability(1, pac_bits=bits)
        rows.append(
            f"{bits:4d} {closed:14.3e} {expected_tries(bits):14.0f}"
        )
    print_table(
        "Eq. 6 brute force (paper: P ~ k/2^24, E[tries] = 2^24 ~ 16.7M)",
        f"{'bits':4s} {'P(1 try)':>14s} {'E[tries]':>14s}",
        rows,
    )

    # -- closed-form claims -----------------------------------------------------
    assert first_order_probability(1, 24) < 1 / 16_000_000
    assert expected_tries(24) == 2**24
    # probability is linear in canary count to first order (k canaries)
    assert first_order_probability(3, 24) / first_order_probability(1, 24) == 3

    # -- Monte-Carlo against the real PAC function -------------------------------
    # at 6 bits, one-try success rate must track 1/64 within noise
    rate = empirical_success_rate(pac_bits=6, trials=600, seed=23)
    expected = 1 / 64
    sigma = math.sqrt(expected * (1 - expected) / 600)
    assert abs(rate - expected) < 4 * sigma + 1e-3, (rate, expected)

    # campaigns against narrow PACs succeed, wide PACs resist
    assert simulate_bruteforce(pac_bits=4, max_attempts=2000, seed=9).succeeded
    assert not simulate_bruteforce(pac_bits=24, max_attempts=500, seed=9).succeeded

    # expected attempt count scales geometrically: a successful 8-bit
    # campaign finishes in a few hundred tries on average
    outcome = simulate_bruteforce(pac_bits=8, max_attempts=20_000, seed=31)
    assert outcome.succeeded

    # -- timed unit: one brute-force campaign -------------------------------------
    benchmark(lambda: simulate_bruteforce(pac_bits=6, max_attempts=200, seed=3).attempts)
