"""§6.3 motivating examples: the attack/defense matrix.

Paper: Pythia detects the three rewritten motivating examples
(Listing 1 privilege escalation, Listing 2 ProFTPd leak, Listing 3
pointer dualism) via the canary check right after the input channel.
The matrix below extends them with the §3 pure-misdirection variant,
a heap-to-heap overflow, and an interprocedural overflow.
"""

import pytest

from repro.attacks import build_scenarios
from repro.core import SCHEMES, protect

from conftest import print_table


def expected(scenario, scheme):
    if scheme == "vanilla":
        return "success"
    if scheme in scenario.detected_by:
        return "detected"
    if scheme in scenario.prevented_by:
        return "prevented"
    return "success"


def test_real_world_attack_matrix(benchmark):
    scenarios = build_scenarios()
    rows = []
    matrix = {}
    for name, scenario in scenarios.items():
        module = scenario.compile()
        outcomes = {}
        for scheme in SCHEMES:
            protected = protect(module, scheme=scheme)
            result = scenario.run_attack(protected.module)
            outcomes[scheme] = scenario.attack_outcome(result)
        matrix[name] = outcomes
        rows.append(
            f"{name:22s} "
            + " ".join(f"{outcomes[s]:>10s}" for s in SCHEMES)
        )

    print_table(
        "Attack/defense matrix (paper §6.3: Pythia detects all three listings)",
        f"{'scenario':22s} " + " ".join(f"{s:>10s}" for s in SCHEMES),
        rows,
    )

    # -- the paper's claims --------------------------------------------------------
    for name, outcomes in matrix.items():
        scenario = scenarios[name]
        for scheme in SCHEMES:
            assert outcomes[scheme] == expected(scenario, scheme), (name, scheme)
    # every attack is real: vanilla always bends
    assert all(m["vanilla"] == "success" for m in matrix.values())
    # the three paper listings are all detected by Pythia
    for name in ("privilege_escalation", "proftpd_leak", "pointer_dualism"):
        assert matrix[name]["pythia"] == "detected"
    # CPA (the conservative scheme) stops everything except pure misdirection
    assert all(
        m["cpa"] in ("detected", "prevented")
        for n, m in matrix.items()
        if n != "pointer_misdirection"
    )

    # -- timed unit: one full attack replay under Pythia ----------------------------
    scenario = scenarios["privilege_escalation"]
    protected = protect(scenario.compile(), scheme="pythia")
    result = benchmark(lambda: scenario.run_attack(protected.module).status)
    assert result == "pac_trap"
