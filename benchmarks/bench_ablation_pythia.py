"""Ablation: which part of Pythia buys what (DESIGN.md §6).

Dimensions ablated:

- stack canaries only vs heap sectioning only vs the full hybrid;
- refinement (intersection with IC forward slices) vs the conservative
  full-backward-slice protection (that ablation *is* CPA);
- heap-sectioning fixed cost on heap-free benchmarks (the paper's
  lbm/mcf observation: ~126 ns charged despite no vulnerable heap vars).
"""

from repro.core import DefenseConfig, protect
from repro.hardware import CPU

from conftest import print_table


def _overhead(module, inputs, config):
    vanilla = protect(module, scheme="vanilla")
    base = CPU(vanilla.module).run(inputs=list(inputs))
    instrumented = protect(module, config=config)
    run = CPU(instrumented.module).run(inputs=list(inputs))
    assert base.ok and run.ok, (base.trap, run.trap)
    return run.cycles / base.cycles - 1.0


def test_ablation_pythia_components(suite, benchmark):
    rows = []
    data = {}
    for name in ("502.gcc_r", "510.parest_r", "505.mcf_r", "519.lbm_r"):
        entry = suite[name]
        module = entry.program.compile()
        inputs = entry.program.inputs
        stack_only = _overhead(
            module, inputs, DefenseConfig(scheme="pythia", protect_heap=False)
        )
        heap_only = _overhead(
            module, inputs, DefenseConfig(scheme="pythia", protect_stack=False)
        )
        full = entry.measurement.runtime_overhead("pythia")
        conservative = entry.measurement.runtime_overhead("cpa")
        data[name] = (stack_only, heap_only, full, conservative)
        rows.append(
            f"{name:18s} {100 * stack_only:8.1f}% {100 * heap_only:8.1f}% "
            f"{100 * full:8.1f}% {100 * conservative:8.1f}%"
        )

    print_table(
        "Ablation: Pythia components (stack canaries / heap sectioning / full / CPA)",
        f"{'benchmark':18s} {'stack':>9s} {'heap':>9s} {'full':>9s} {'CPA':>9s}",
        rows,
    )

    for name, (stack_only, heap_only, full, conservative) in data.items():
        # each component alone costs no more than the hybrid + noise,
        # and the hybrid stays far below the conservative scheme
        assert stack_only <= full + 0.02, name
        assert heap_only <= full + 0.02, name
        assert full < conservative, name
    # stack canaries dominate Pythia's cost (most vulnerable vars are
    # stack variables -- the paper's ~99% observation)
    assert data["502.gcc_r"][0] > data["502.gcc_r"][1]
    # heap-free benchmarks still pay a small sectioning-free cost of ~0
    assert data["519.lbm_r"][1] < 0.05

    # -- timed unit: stack-only protection ------------------------------------------
    module = suite["505.mcf_r"].program.compile()
    config = DefenseConfig(scheme="pythia", protect_heap=False)
    benchmark(lambda: protect(module, config=config).pa_static)
