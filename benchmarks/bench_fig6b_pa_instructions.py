"""Fig. 6(b): ARM-PA instruction counts, CPA vs Pythia.

Paper: CPA instruments ~5x10^5 PA instructions in total (max ~1.3x10^5
in gcc/parest); Pythia cuts the total dramatically (to ~1.1x10^4, a
factor the intro rounds to 4.25x fewer sites), with parest carrying the
most Pythia PA instructions.  Roughly 50% of instrumented PA
instructions execute dynamically in both schemes.
"""

from repro.metrics import mean

from conftest import print_table


def test_fig6b_pa_instructions(suite, spec_suite, benchmark):
    rows = []
    total_cpa = total_pythia = 0
    for name, entry in suite.items():
        m = entry.measurement
        total_cpa += m.pa_static("cpa")
        total_pythia += m.pa_static("pythia")
        rows.append(
            f"{name:18s} {m.pa_static('cpa'):7d} {m.pa_static('pythia'):8d} "
            f"{m.pa_dynamic('cpa'):9d} {m.pa_dynamic('pythia'):9d}"
        )

    reduction = total_cpa / max(1, total_pythia)
    print_table(
        "Fig. 6(b) PA instructions (paper: CPA total >> Pythia total, ~4.25x fewer sites)",
        f"{'benchmark':18s} {'CPA-st':>7s} {'Py-st':>8s} {'CPA-dyn':>9s} {'Py-dyn':>9s}",
        rows,
        f"{'total':18s} {total_cpa:7d} {total_pythia:8d}   reduction {reduction:.2f}x",
    )

    # -- shape assertions --------------------------------------------------------
    assert total_pythia < total_cpa
    assert reduction > 1.5  # the paper's static-site reduction
    # gcc and parest carry the most CPA PA instructions (paper: 1.3e5 each)
    ranked = sorted(
        spec_suite, key=lambda n: spec_suite[n].measurement.pa_static("cpa"), reverse=True
    )
    assert set(ranked[:2]) <= {"502.gcc_r", "510.parest_r"}
    # parest carries the most Pythia PA instructions (paper: 59680)
    ranked_pythia = sorted(
        spec_suite,
        key=lambda n: spec_suite[n].measurement.pa_static("pythia"),
        reverse=True,
    )
    assert "510.parest_r" in ranked_pythia[:2]
    # dynamic executions exist wherever static sites exist
    for name, entry in suite.items():
        if entry.measurement.pa_static("pythia"):
            assert entry.measurement.pa_dynamic("pythia") > 0, name

    # -- timed unit: static PA census of one instrumented module -------------------
    protection = suite["502.gcc_r"].measurement.runs["cpa"].protection
    benchmark(lambda: protection.pa_static)
