"""Eqs. 1-5: analytic instruction-count bounds vs measured PA counts.

Paper: the conservative scheme instruments at most B*v*(2u+1) PA
instructions (Eq. 1) while the performance-aware scheme is bounded by
B*(1+2du)*v' (Eq. 5); v' << v is what makes Pythia cheap.
"""

from repro.core import clone_module, protect
from repro.metrics import extract_bound_parameters, mean
from repro.transforms import Mem2Reg

from conftest import print_table


def test_instruction_bounds(suite, benchmark):
    rows = []
    factors = []
    for name, entry in suite.items():
        module = clone_module(entry.program.compile())
        Mem2Reg().run(module)
        params = extract_bound_parameters(module)
        cpa_measured = entry.measurement.pa_static("cpa")
        pythia_measured = entry.measurement.pa_static("pythia")
        factors.append(params.refinement_factor())
        rows.append(
            f"{name:18s} {params.branches:4d} {params.vulnerable:4d} "
            f"{params.refined:4d} {cpa_measured:7d} {params.conservative_bound():12.0f} "
            f"{pythia_measured:7d} {params.pythia_simplified_bound():12.0f}"
        )
        # the analytic bounds dominate the measured instrumentation
        assert cpa_measured <= params.conservative_bound(), name
        assert pythia_measured <= params.pythia_simplified_bound() + params.branches, name

    print_table(
        "Eqs. 1-5 instruction bounds (measured static PA vs analytic upper bounds)",
        f"{'benchmark':18s} {'B':>4s} {'v':>4s} {'v_':>4s} {'cpaPA':>7s} "
        f"{'Eq1bound':>12s} {'pyPA':>7s} {'Eq5bound':>12s}",
        rows,
        f"mean refinement v/v' = {mean(factors):.2f}x post-mem2reg "
        f"(the source-level census of Fig. 6(a) shows the paper's ~4.5x)",
    )

    assert mean(factors) > 1.2

    # -- timed unit: bound extraction ------------------------------------------------
    module = clone_module(suite["519.lbm_r"].program.compile())
    Mem2Reg().run(module)
    benchmark(lambda: extract_bound_parameters(module).conservative_bound())
