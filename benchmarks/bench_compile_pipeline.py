#!/usr/bin/env python3
"""Compile-pipeline throughput: shared analysis and the compilation cache.

Two phases:

1. **Shared analysis vs per-scheme compilation.**  Every workload
   profile is protected under every scheme three ways:

   - the shared-analysis pipeline (verify/mem2reg/analyze once, clone +
     remap per scheme);
   - the per-scheme *recompute oracle* (today's ``shared_analysis=False``
     path, which re-analyzes per scheme but already uses the once-per-
     stage verification schedule);
   - the *pre-rework baseline*: per-scheme clone + analysis with the old
     verify-the-input-and-after-every-pass schedule, i.e. the pipeline
     exactly as it stood before the shared-analysis rework.

   All three are asserted to produce bit-identical instrumented modules
   before anything is timed.  The end-to-end speedup (and the gate) is
   baseline/shared; the oracle ratio is recorded alongside it so the
   trajectory separates "analysis sharing" from "verifier scheduling".

2. **Cold vs warm compilation cache.**  A suite runs twice against a
   fresh cache directory: the cold pass must miss and fill every
   (program, scheme) entry, the warm pass must hit all of them and
   reproduce the cold pass's architectural numbers exactly.

Wall-clock in shared containers is noisy, so phase 1 times CPU seconds
(``time.process_time``) with a ``gc.collect()`` barrier before each
run, interleaves the two sides so slow machine phases land on both, and
takes the minimum per side as the noise-free estimate.

Appends one entry to ``BENCH_compile.json`` (see repro.perf.trajectory)
so compile throughput can be tracked across commits.

Usage::

    python benchmarks/bench_compile_pipeline.py
    python benchmarks/bench_compile_pipeline.py --repeat 3 \
        --suite-size 3 --min-speedup 1.2   # CI smoke
"""

from __future__ import annotations

import argparse
import datetime
import gc
import os
import shutil
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.config import DefenseConfig, SCHEMES
from repro.core.framework import _build_passes, clone_module, protect_all
from repro.core.vulnerability import VulnerabilityAnalysis
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.perf import append_entry, run_suite
from repro.transforms.mem2reg import Mem2Reg
from repro.transforms.pass_manager import PassManager
from repro.workloads import generate_program, get_profile, profile_names

#: SchemeSummary fields that must match between suite runs exactly
#: (timing fields excluded, they measure the host, not the program).
COMPARED_FIELDS = (
    "scheme",
    "status",
    "cycles",
    "instructions",
    "ipc",
    "steps",
    "pa_static",
    "pa_dynamic",
    "binary_bytes",
    "canary_count",
    "isolated_allocations",
)


def baseline_protect_all(module):
    """The compile pipeline as it stood before the shared-analysis rework.

    Per scheme: clone the pristine module, verify, promote, verify,
    re-run the full vulnerability analysis, then drive the passes with
    the old verify-the-input-and-after-every-pass schedule.  This is the
    end-to-end comparison point for the rework; contrast with
    ``protect_all(shared_analysis=False)``, which also re-analyzes per
    scheme but already verifies once per pipeline stage.
    """
    results = {}
    for scheme in SCHEMES:
        target = clone_module(module)
        verify_module(target)
        Mem2Reg().run(target)
        verify_module(target)
        if scheme == "vanilla":
            results[scheme] = target
            continue
        report = VulnerabilityAnalysis(target).analyze()
        passes = _build_passes(DefenseConfig(scheme=scheme), report)
        PassManager(passes, verify_input=True, verify_each=True).run(target)
        results[scheme] = target
    return results


def check_bit_identity(modules):
    """Every scheme module must print identically under all three paths."""
    for name, module in modules:
        shared = protect_all(clone_module(module), shared_analysis=True)
        recomputed = protect_all(clone_module(module), shared_analysis=False)
        baseline = baseline_protect_all(module)
        for scheme in SCHEMES:
            shared_text = print_module(shared[scheme].module)
            if shared_text != print_module(recomputed[scheme].module):
                raise AssertionError(
                    f"{name}/{scheme}: shared-analysis module diverged "
                    "from the per-scheme recompute oracle"
                )
            if shared_text != print_module(baseline[scheme]):
                raise AssertionError(
                    f"{name}/{scheme}: shared-analysis module diverged "
                    "from the pre-rework baseline pipeline"
                )


def time_compiles(modules, compile_one):
    """CPU seconds for ``compile_one`` over every module, all schemes."""
    # Clones are made outside the timed region: all sides consume
    # identical fresh inputs and the copy cost is not what's compared.
    fresh = [clone_module(module) for _, module in modules]
    gc.collect()
    start = time.process_time()
    for module in fresh:
        compile_one(module)
    return time.process_time() - start


def compare_suites(cold, warm):
    for name in cold.programs:
        cold_schemes = cold.programs[name].schemes
        warm_schemes = warm.programs[name].schemes
        for cold_s, warm_s in zip(cold_schemes, warm_schemes):
            for field in COMPARED_FIELDS:
                cold_value = getattr(cold_s, field)
                warm_value = getattr(warm_s, field)
                if cold_value != warm_value:
                    raise AssertionError(
                        f"{name}/{cold_s.scheme}: {field} diverged between "
                        f"cold ({cold_value!r}) and warm ({warm_value!r}) "
                        "cache runs"
                    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--out", default=os.path.join(REPO_ROOT, "BENCH_compile.json")
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="fail if the end-to-end (baseline/shared) speedup falls below this",
    )
    parser.add_argument(
        "--suite-size",
        type=int,
        default=6,
        help="profiles in the cold-vs-warm cache suite",
    )
    parser.add_argument(
        "--skip-cache",
        action="store_true",
        help="skip the cold-vs-warm cache phase",
    )
    args = parser.parse_args(argv)

    names = profile_names()
    modules = [
        (name, generate_program(get_profile(name)).compile()) for name in names
    ]
    total_instructions = sum(m.instruction_count() for _, m in modules)
    print(
        f"{len(modules)} profiles x {len(SCHEMES)} schemes "
        f"({total_instructions} IR instructions), repeat={args.repeat} "
        "(interleaved, min per side, CPU seconds)"
    )

    check_bit_identity(modules)
    print(
        "bit-identity: shared-analysis modules == recompute oracle "
        "== pre-rework baseline"
    )

    sides = {
        "shared": lambda m: protect_all(m, shared_analysis=True, consume=True),
        "recompute": lambda m: protect_all(m, shared_analysis=False),
        "baseline": baseline_protect_all,
    }
    best = {name: float("inf") for name in sides}
    for _ in range(args.repeat):
        for name, compile_one in sides.items():
            best[name] = min(best[name], time_compiles(modules, compile_one))
    speedup = best["baseline"] / best["shared"]
    recompute_speedup = best["recompute"] / best["shared"]
    print(
        f"shared analysis {best['shared']:.3f}s, per-scheme recompute "
        f"{best['recompute']:.3f}s ({recompute_speedup:.2f}x), pre-rework "
        f"baseline {best['baseline']:.3f}s -> {speedup:.2f}x end-to-end"
    )

    entry = {
        "label": "compile-pipeline",
        "date": datetime.date.today().isoformat(),
        "profiles": len(modules),
        "schemes": list(SCHEMES),
        "repeat": args.repeat,
        "shared_seconds": round(best["shared"], 6),
        "recompute_seconds": round(best["recompute"], 6),
        "baseline_seconds": round(best["baseline"], 6),
        "speedup": round(speedup, 3),
        "recompute_speedup": round(recompute_speedup, 3),
    }

    if not args.skip_cache:
        suite_names = names[: args.suite_size]
        expected = len(suite_names) * len(SCHEMES)
        cache_dir = tempfile.mkdtemp(prefix="repro-compile-cache-")
        try:
            cold = run_suite(
                names=suite_names, seed=args.seed, cache_dir=cache_dir
            )
            warm = run_suite(
                names=suite_names, seed=args.seed, cache_dir=cache_dir
            )
            if cold.cache_hits != 0 or cold.cache_misses != expected:
                raise AssertionError(
                    f"cold run expected 0 hits / {expected} misses, got "
                    f"{cold.cache_hits} / {cold.cache_misses}"
                )
            if warm.cache_hits != expected or warm.cache_misses != 0:
                raise AssertionError(
                    f"warm run expected {expected} hits / 0 misses, got "
                    f"{warm.cache_hits} / {warm.cache_misses}"
                )
            compare_suites(cold, warm)
            print(
                f"cache suite ({len(suite_names)} benchmarks): cold "
                f"{cold.wall_seconds:.2f}s ({cold.cache_misses} misses), "
                f"warm {warm.wall_seconds:.2f}s ({warm.cache_hits} hits, "
                "architectural numbers identical)"
            )
            entry["cache"] = {
                "names": list(suite_names),
                "entries": expected,
                "cold_wall_seconds": round(cold.wall_seconds, 3),
                "warm_wall_seconds": round(warm.wall_seconds, 3),
                "warm_hits": warm.cache_hits,
            }
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)

    append_entry(args.out, entry)
    print(f"appended trajectory entry to {args.out}")

    if speedup < args.min_speedup:
        print(
            f"FAIL: end-to-end shared-analysis speedup {speedup:.2f}x "
            f"below threshold {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
