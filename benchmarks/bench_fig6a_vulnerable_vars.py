"""Fig. 6(a): vulnerable-variable census, CPA vs Pythia refinement.

Paper: the un-refined (CPA) set covers ~29% of all program variables;
Pythia's refinement shrinks it by ~4.5x, marking only ~5.1% of
variables vulnerable; ~74% of conditional branches are not affected by
input channels at all (1.26% directly + 25.1% indirectly affected).
"""

from repro.core import analyze_module, clone_module
from repro.metrics import mean
from repro.transforms import Mem2Reg

from conftest import print_table


def _report(entry):
    # The census counts *source-level* variables, so it runs on the raw
    # (pre-mem2reg) module where every scalar still has a slot.
    return analyze_module(entry.program.compile())


def test_fig6a_vulnerable_variables(suite, benchmark):
    rows = []
    cpa_fracs, refined_fracs, factors, unaffected = [], [], [], []
    for name, entry in suite.items():
        report = _report(entry)
        categories = report.branch_categories()
        total_branches = max(1, sum(categories.values()))
        cpa_fracs.append(report.cpa_fraction())
        refined_fracs.append(report.refined_fraction())
        factors.append(report.refinement_factor())
        unaffected.append(categories["unaffected"] / total_branches)
        rows.append(
            f"{name:18s} {100 * report.cpa_fraction():6.1f}% "
            f"{100 * report.refined_fraction():8.1f}% "
            f"{report.refinement_factor():6.1f}x "
            f"{100 * categories['unaffected'] / total_branches:9.1f}%"
        )

    print_table(
        "Fig. 6(a) vulnerable variables "
        "(paper: CPA ~29% of vars, refinement ~4.5x, ~74% branches unaffected)",
        f"{'benchmark':18s} {'CPA':>7s} {'refined':>9s} {'factor':>7s} {'unaffect':>10s}",
        rows,
        f"{'average':18s} {100 * mean(cpa_fracs):6.1f}% "
        f"{100 * mean(refined_fracs):8.1f}% {mean(factors):6.1f}x "
        f"{100 * mean(unaffected):9.1f}%",
    )

    # -- shape assertions --------------------------------------------------------
    # refinement shrinks the set substantially everywhere
    assert all(f >= 1.0 for f in factors)
    assert mean(factors) > 2.5  # paper: ~4.5x
    # Pythia's refined set is a small fraction of variables (paper 5.1%);
    # the conservative fraction is inflated at this scale because the
    # generated kernels are branch-dense -- see EXPERIMENTS.md.
    assert mean(refined_fracs) < 0.35
    assert mean(refined_fracs) < mean(cpa_fracs) / 2
    # most branches are not input-affected (paper: ~74%)
    assert mean(unaffected) > 0.5

    # -- timed unit: the full vulnerability analysis of one module ----------------
    module = clone_module(suite["505.mcf_r"].program.compile())
    Mem2Reg().run(module)
    benchmark(lambda: analyze_module(module).refinement_factor())
