"""Shared fixtures for the benchmark harness.

Running ``pytest benchmarks/ --benchmark-only`` regenerates every table
and figure of the paper's evaluation.  The heavyweight work -- running
all 16 benchmark programs under all four schemes -- is done once per
session and cached; each bench file formats its figure from the cache,
prints the paper-style rows, asserts the shape claims, and times a
representative unit of work with pytest-benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import pytest

from repro.metrics import (
    AttackDistanceRow,
    BenchmarkMeasurement,
    BranchSecurityRow,
    attack_distance_row,
    branch_security_row,
    measure_program,
)
from repro.workloads import ALL_PROFILES, GeneratedProgram, generate_program


@dataclass
class BenchEntry:
    """Everything measured for one benchmark."""

    name: str
    program: GeneratedProgram
    measurement: BenchmarkMeasurement
    security: BranchSecurityRow
    distances: AttackDistanceRow


@pytest.fixture(scope="session")
def suite() -> Dict[str, BenchEntry]:
    """All 16 benchmarks measured under all four schemes."""
    entries: Dict[str, BenchEntry] = {}
    for name, profile in ALL_PROFILES.items():
        program = generate_program(profile)
        module = program.compile()
        entries[name] = BenchEntry(
            name=name,
            program=program,
            measurement=measure_program(program),
            security=branch_security_row(module, name),
            distances=attack_distance_row(module, name),
        )
    return entries


@pytest.fixture(scope="session")
def spec_suite(suite) -> Dict[str, BenchEntry]:
    """The 15 SPEC benchmarks (nginx is reported separately, §6.3)."""
    return {name: entry for name, entry in suite.items() if name != "nginx"}


def print_table(title: str, header: str, rows, footer: str = "") -> None:
    width = max(len(header), *(len(r) for r in rows)) if rows else len(header)
    print()
    print(f"== {title}")
    print(header)
    print("-" * width)
    for row in rows:
        print(row)
    if footer:
        print("-" * width)
        print(footer)
