"""Fig. 4(b): binary size increase, CPA vs Pythia.

Paper: CPA bloats binaries by 21.56% on average (max 33.2%, nginx);
Pythia by 10.37% (max 17.99%, 510.parest_r).
"""

from repro.core import protect
from repro.metrics import mean

from conftest import print_table


def test_fig4b_binary_size(suite, spec_suite, benchmark):
    rows = []
    for name, entry in suite.items():
        cpa = 100 * entry.measurement.binary_increase("cpa")
        pythia = 100 * entry.measurement.binary_increase("pythia")
        rows.append(f"{name:18s} {cpa:7.1f}% {pythia:8.1f}%")

    cpa_avg = mean(e.measurement.binary_increase("cpa") for e in suite.values())
    py_avg = mean(e.measurement.binary_increase("pythia") for e in suite.values())
    print_table(
        "Fig. 4(b) binary size increase (paper: CPA 21.56%, Pythia 10.37%)",
        f"{'benchmark':18s} {'CPA':>8s} {'Pythia':>9s}",
        rows,
        f"{'average':18s} {100 * cpa_avg:7.1f}% {100 * py_avg:8.1f}%",
    )

    # -- shape assertions --------------------------------------------------------
    assert 0 < py_avg < cpa_avg < 0.40
    # parest ranks at the top of Pythia bloat among the SPEC benchmarks
    # (the paper has it first; at this scale it ties with gcc)
    ranked = sorted(
        spec_suite,
        key=lambda n: spec_suite[n].measurement.binary_increase("pythia"),
        reverse=True,
    )
    assert "510.parest_r" in ranked[:2], ranked[:3]
    # every scheme adds real bytes on IC-bearing benchmarks
    assert spec_suite["502.gcc_r"].measurement.binary_increase("cpa") > 0.1

    # -- timed unit: protecting (instrumenting) one module ---------------------------
    program = suite["519.lbm_r"].program
    module = program.compile()

    def instrument():
        return protect(module, scheme="pythia").pa_static

    benchmark(instrument)
