"""Fig. 7(a): pointer density of backward slices, per benchmark.

Paper: the fraction of back-slice variables that are pointers tracks
the benchmark's language/style -- C++ and pointer-intensive codes
(parest, omnetpp, xalancbmk) sit high, numeric kernels (lbm, mcf) low.
This density is exactly what drives DFI's slice terminations in
Fig. 7(b).
"""

from repro.core import analyze_module, clone_module
from repro.metrics import mean
from repro.transforms import Mem2Reg
from repro.workloads import get_profile

from conftest import print_table


def test_fig7a_pointer_backslices(suite, benchmark):
    rows = []
    density = {}
    branch_share = {}
    for name, entry in suite.items():
        module = clone_module(entry.program.compile())
        Mem2Reg().run(module)
        report = analyze_module(module)
        fractions = [s.pointer_fraction() for s in report.branch_slices.values()]
        density[name] = mean(fractions)
        total_insts = max(1, module.instruction_count())
        branch_share[name] = len(report.branch_slices) / total_insts
        rows.append(
            f"{name:18s} {100 * density[name]:8.1f}% {100 * branch_share[name]:9.1f}%"
        )

    print_table(
        "Fig. 7(a) pointer share of backward slices / branch share of instructions",
        f"{'benchmark':18s} {'ptr-frac':>9s} {'br-share':>10s}",
        rows,
        f"{'average':18s} {100 * mean(density.values()):8.1f}% "
        f"{100 * mean(branch_share.values()):9.1f}%",
    )

    # -- shape assertions --------------------------------------------------------
    # every benchmark has pointer traffic in its slices, none is all-pointer
    for name, value in density.items():
        assert 0.0 < value < 1.0, name
    # pointer-heavy profiles sit above the numeric kernels
    heavy = mean(density[n] for n in ("510.parest_r", "520.omnetpp_r", "502.gcc_r"))
    light = mean(density[n] for n in ("519.lbm_r", "505.mcf_r"))
    assert heavy > light
    # branches are frequent (the paper: every ~10th instruction)
    assert mean(branch_share.values()) > 0.03

    # -- timed unit: slicing every branch of one module ----------------------------
    module = clone_module(suite["541.leela_r"].program.compile())
    Mem2Reg().run(module)

    def slice_all():
        return len(analyze_module(module).branch_slices)

    benchmark(slice_all)
