"""Fig. 4(a): runtime overhead, CPA vs Pythia, per benchmark.

Paper: CPA averages 47.88% with a worst case of 69.8% (502.gcc_r);
Pythia drops the average to 13.07% with a worst case of 25.4% (also
gcc), and 500.perlbench_r collapses from 60.7% to 18%.
"""

from repro.core import protect
from repro.hardware import CPU
from repro.metrics import mean

from conftest import print_table


def test_fig4a_runtime_overhead(suite, spec_suite, benchmark):
    rows = []
    for name, entry in suite.items():
        cpa = 100 * entry.measurement.runtime_overhead("cpa")
        pythia = 100 * entry.measurement.runtime_overhead("pythia")
        rows.append(f"{name:18s} {cpa:7.1f}% {pythia:8.1f}%")

    cpa_avg = mean(e.measurement.runtime_overhead("cpa") for e in suite.values())
    py_avg = mean(e.measurement.runtime_overhead("pythia") for e in suite.values())
    print_table(
        "Fig. 4(a) runtime overhead vs vanilla (paper: CPA 47.88%, Pythia 13.07%)",
        f"{'benchmark':18s} {'CPA':>8s} {'Pythia':>9s}",
        rows,
        f"{'average':18s} {100 * cpa_avg:7.1f}% {100 * py_avg:8.1f}%",
    )

    # -- shape assertions --------------------------------------------------------
    # Pythia beats CPA on every benchmark, by a large average factor.
    for entry in suite.values():
        assert entry.measurement.runtime_overhead(
            "pythia"
        ) < entry.measurement.runtime_overhead("cpa")
    assert cpa_avg / py_avg > 2.5  # paper: 47.88 / 13.07 ~ 3.7x
    # gcc is the worst case for both schemes among the SPEC benchmarks.
    gcc = spec_suite["502.gcc_r"].measurement
    for name, entry in spec_suite.items():
        assert entry.measurement.runtime_overhead("cpa") <= (
            gcc.runtime_overhead("cpa") + 1e-9
        ), name
        assert entry.measurement.runtime_overhead("pythia") <= (
            gcc.runtime_overhead("pythia") + 1e-9
        ), name
    # overall magnitudes in the paper's band
    assert 0.30 < cpa_avg < 0.75
    assert 0.05 < py_avg < 0.25

    # -- timed unit: one protected execution of the median benchmark --------------
    entry = suite["505.mcf_r"]
    module = entry.measurement.runs["pythia"].protection.module

    def run_protected():
        return CPU(module).run(inputs=list(entry.program.inputs))

    result = benchmark(run_protected)
    assert result.ok
