#!/usr/bin/env python3
"""Serve-daemon latency: warm registry vs cold single-shot CLI.

Boots ``python -m repro serve`` as a subprocess, then measures three
things against the same nginx-shaped workload programs the load
generator uses:

1. **Cold baseline** -- wall clock of a fresh ``python -m repro run``
   subprocess (interpreter start, imports, parse, analyze, protect,
   execute), min over ``--cold-runs`` runs.  This is what every request
   costs without a daemon.
2. **Warm latency** -- per-request latency of the same program through
   an already-warm daemon worker (registry hit: no parse, no analysis,
   no re-protection, hot code caches), reported as p50/p99 over
   ``--warm-runs`` requests.  The warm-vs-cold ratio is the daemon's
   reason to exist; the run fails if it drops below
   ``--min-warm-speedup``.
3. **Saturation throughput** -- the deterministic
   :func:`~repro.workloads.nginx.build_request_mix` fired at increasing
   concurrency; the reported figure is the best requests/s observed.

Appends one entry to ``BENCH_serve.json`` (same envelope as
``BENCH_interp.json``, see :mod:`repro.perf.trajectory`) and fails when
the mixed-load p99 rises more than ``--max-p99-regression`` above the
trajectory's previous serve entry.

Usage::

    python benchmarks/bench_serve_latency.py
    python benchmarks/bench_serve_latency.py --requests 100 \
        --warm-runs 50 --cold-runs 2 --concurrency 1 2 4   # CI smoke
"""

from __future__ import annotations

import argparse
import datetime
import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.serve import ServeClient, percentile, run_load, wait_for_server
from repro.perf import append_entry, check_serve_regression_file
from repro.workloads.nginx import build_request_mix, _mix_programs


def start_daemon(socket_path: str, workers: int, cache_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            socket_path,
            "--workers",
            str(workers),
            "--cache-dir",
            cache_dir,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def measure_cold(source_path: str, inputs, seed: int, runs: int) -> float:
    """Min wall-clock of a fresh single-shot CLI run (seconds)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable,
        "-m",
        "repro",
        "run",
        source_path,
        "--scheme",
        "pythia",
        "--interpreter",
        "block",
        "--seed",
        str(seed),
    ]
    for line in inputs:
        command.extend(["--input", line])
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        completed = subprocess.run(
            command, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        elapsed = time.perf_counter() - start
        if completed.returncode != 0:
            raise RuntimeError(
                f"cold run failed with exit code {completed.returncode}"
            )
        best = min(best, elapsed)
    return best


def measure_warm(client: ServeClient, request: dict, runs: int):
    """Per-request latencies (seconds) of one hot request, post-warmup."""
    for _ in range(3):  # warm the shard's registry and code caches
        response = client.request(**request)
        if response.get("status") != "ok":
            raise RuntimeError(f"warmup request failed: {response}")
    latencies = []
    for _ in range(runs):
        start = time.perf_counter()
        response = client.request(**request)
        elapsed = time.perf_counter() - start
        if response.get("status") != "ok":
            raise RuntimeError(f"warm request failed: {response}")
        latencies.append(elapsed)
    return latencies


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--requests", type=int, default=200,
                        help="mixed-load requests per concurrency level")
    parser.add_argument("--variants", type=int, default=3,
                        help="distinct nginx-shaped programs in the mix")
    parser.add_argument("--cold-runs", type=int, default=3)
    parser.add_argument("--warm-runs", type=int, default=100)
    parser.add_argument("--concurrency", type=int, nargs="+",
                        default=[1, 2, 4, 8],
                        help="concurrency sweep for saturation throughput")
    parser.add_argument("--min-warm-speedup", type=float, default=5.0,
                        help="fail if warm daemon requests are not at least "
                        "this many times faster than a cold CLI run")
    parser.add_argument("--max-p99-regression", type=float, default=0.10,
                        help="fail if mixed-load p99 rises more than this "
                        "fraction above the trajectory baseline (negative "
                        "disables the check)")
    parser.add_argument("--baseline", default=None,
                        help="trajectory file to gate against (defaults to --out)")
    parser.add_argument("--out", default=os.path.join(REPO_ROOT, "BENCH_serve.json"))
    args = parser.parse_args(argv)

    programs = _mix_programs(args.variants, "3s")
    program = programs[0]
    inputs = [data.decode("utf-8") for data in program.inputs]

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as workdir:
        source_path = os.path.join(workdir, f"{program.profile.name}.c")
        with open(source_path, "w", encoding="utf-8") as handle:
            handle.write(program.source)

        print(f"cold baseline: python -m repro run x{args.cold_runs} "
              f"({program.profile.name}, pythia, block tier)")
        cold_seconds = measure_cold(source_path, inputs, args.seed, args.cold_runs)
        print(f"  cold min: {cold_seconds * 1e3:.1f}ms")

        socket_path = os.path.join(workdir, "serve.sock")
        cache_dir = os.path.join(workdir, "cache")
        daemon = start_daemon(socket_path, args.workers, cache_dir)
        try:
            wait_for_server(socket_path=socket_path, deadline_s=30)

            warm_request = {
                "op": "run",
                "source": program.source,
                "name": program.profile.name,
                "scheme": "pythia",
                "seed": args.seed,
                "inputs": inputs,
                "interpreter": "block",
            }
            with ServeClient(socket_path=socket_path) as client:
                warm_latencies = measure_warm(client, warm_request, args.warm_runs)
            warm_p50 = percentile([s * 1e3 for s in warm_latencies], 50.0)
            warm_p99 = percentile([s * 1e3 for s in warm_latencies], 99.0)
            warm_speedup = cold_seconds / (warm_p50 / 1e3)
            print(f"warm daemon:   p50 {warm_p50:.2f}ms, p99 {warm_p99:.2f}ms "
                  f"over {args.warm_runs} requests "
                  f"-> {warm_speedup:.1f}x vs cold CLI")

            mix = build_request_mix(
                args.requests,
                seed=args.seed,
                variants=args.variants,
                interpreter="block",
            )
            sweep = []
            best = None
            for concurrency in args.concurrency:
                report = run_load(
                    list(mix), concurrency=concurrency, socket_path=socket_path
                )
                if report.failures:
                    raise RuntimeError(
                        f"{report.failures} failed request(s) at "
                        f"concurrency {concurrency}"
                    )
                sweep.append(
                    {
                        "concurrency": concurrency,
                        "throughput_rps": round(report.throughput_rps, 1),
                        "p50_ms": round(report.p50_ms(), 3),
                        "p99_ms": round(report.p99_ms(), 3),
                    }
                )
                if best is None or report.throughput_rps > best.throughput_rps:
                    best = report
                print(f"  load c={concurrency:2d}: "
                      f"{report.throughput_rps:8,.1f} req/s, "
                      f"p50 {report.p50_ms():6.2f}ms, "
                      f"p99 {report.p99_ms():6.2f}ms "
                      f"({report.requests} requests, 0 failed)")

            with ServeClient(socket_path=socket_path) as client:
                client.request("shutdown")
            daemon.wait(timeout=30)
        finally:
            if daemon.poll() is None:
                daemon.terminate()
                try:
                    daemon.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    daemon.kill()

    saturation = max(level["throughput_rps"] for level in sweep)
    print(f"saturation: {saturation:,.1f} req/s "
          f"(best of concurrency sweep {args.concurrency})")

    entry = {
        "label": "serve-latency",
        "date": datetime.date.today().isoformat(),
        "workers": args.workers,
        "requests": args.requests,
        "serve": {
            "cold_ms": round(cold_seconds * 1e3, 3),
            "warm_p50_ms": round(warm_p50, 3),
            "warm_p99_ms": round(warm_p99, 3),
            "warm_speedup": round(warm_speedup, 2),
            # The gated figure: p99 under the mixed load at the best
            # throughput's concurrency.
            "p50_ms": best.to_dict()["p50_ms"],
            "p99_ms": best.to_dict()["p99_ms"],
            "throughput_rps": round(saturation, 1),
            "sweep": sweep,
        },
    }

    regression = None
    if args.max_p99_regression >= 0:
        regression, skip_note = check_serve_regression_file(
            args.baseline or args.out, entry, tolerance=args.max_p99_regression
        )
        if skip_note is not None:
            print(skip_note)

    append_entry(args.out, entry)
    print(f"appended trajectory entry to {args.out}")

    failed = False
    if warm_speedup < args.min_warm_speedup:
        print(f"FAIL: warm speedup {warm_speedup:.1f}x below threshold "
              f"{args.min_warm_speedup:.1f}x", file=sys.stderr)
        failed = True
    if regression is not None:
        print(f"FAIL: {regression}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
