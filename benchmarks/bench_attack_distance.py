"""§6.2 attack distance: input channel vs DFI vs Pythia.

Paper: averaged over the benchmarks, input channels sit 83.29 IR
instructions from their branches; DFI's protection starts 113.95
instructions out (its slices terminate at pointer arithmetic); Pythia's
starts 127.35 instructions out.  A technique protects a branch only if
its attack distance is at least the input channel's -- Pythia's always
is, by construction.
"""

from repro.metrics import attack_distance_row, mean

from conftest import print_table


def test_attack_distance(suite, benchmark):
    rows = []
    ic, dfi, pythia = [], [], []
    for name, entry in suite.items():
        row = entry.distances
        if row.affected_branches == 0:
            continue
        ic.append(row.ic_distance)
        dfi.append(row.dfi_distance)
        pythia.append(row.pythia_distance)
        rows.append(
            f"{name:18s} {row.affected_branches:5d} {row.ic_distance:8.1f} "
            f"{row.dfi_distance:8.1f} {row.pythia_distance:8.1f}"
        )

    print_table(
        "Attack distance in IR instructions "
        "(paper: IC 83.29, DFI 113.95, Pythia 127.35)",
        f"{'benchmark':18s} {'affct':>5s} {'IC':>8s} {'DFI':>8s} {'Pythia':>8s}",
        rows,
        f"{'average':18s} {'':5s} {mean(ic):8.1f} {mean(dfi):8.1f} {mean(pythia):8.1f}",
    )

    # -- shape assertions --------------------------------------------------------
    # the ordering IC < DFI < Pythia that drives the paper's argument
    assert mean(ic) < mean(dfi) < mean(pythia)
    # Pythia's protection starts at least as far out as the attacker on
    # every benchmark -- the Definition 2.4 security condition
    for name, entry in suite.items():
        if entry.distances.affected_branches:
            assert entry.distances.pythia_exceeds_ic, name
            assert entry.distances.pythia_exceeds_dfi, name

    # -- timed unit ---------------------------------------------------------------
    module = suite["525.x264_r"].program.compile()
    benchmark(lambda: attack_distance_row(module, "x264").pythia_distance)
