#!/usr/bin/env python3
"""Interpreter throughput: the four execution tiers compared.

Runs one generated benchmark under every scheme with all four CPU
backends (reference isinstance loop, pre-decoded dispatch, the
block-compiled tier, and the profile-guided trace tier), verifies
their architectural counters are bit-identical, and reports the
decoded/reference, block/decoded, and trace/decoded speedups.  The
trace tier is measured end-to-end through its profile-guided path: a
profiled block-tier warmup run supplies the per-block counts that
drive region selection.  Also times a small suite serially vs with two
worker processes to exercise the ``repro.perf`` fan-out.

Wall-clock in shared containers is noisy (same code can swing tens of
percent between batches), so each scheme is measured as *interleaved*
reference/decoded pairs and the speedup is the ratio of the per-side
minima -- the minimum estimates the noise-free cost, and interleaving
keeps slow phases from landing on one side only.

Appends one entry to ``BENCH_interp.json`` (see repro.perf.trajectory)
so throughput can be tracked across commits, and fails when the block
tier's geomean steps/s regresses more than ``--max-block-regression``
below the trajectory's previous block-tier entry.

Usage::

    python benchmarks/bench_interp_throughput.py
    python benchmarks/bench_interp_throughput.py --profile 505.mcf_r \
        --repeat 3 --min-speedup 1.0 --skip-suite   # CI smoke
"""

from __future__ import annotations

import argparse
import datetime
import math
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.config import SCHEMES
from repro.core.framework import protect
from repro.hardware import (
    CPU,
    block_compile,
    decode_module,
    invalidate_decode_cache,
    trace_compile,
)
from repro.observability import ExecutionProfiler
from repro.perf import append_entry, check_block_regression_file, run_suite
from repro.workloads import generate_program, get_profile, profile_names

#: Architectural counters that must match between backends exactly.
COMPARED_FIELDS = (
    "status",
    "return_value",
    "cycles",
    "instructions",
    "ipc",
    "steps",
    "output",
    "pac_sign_count",
    "pac_auth_count",
    "isolated_allocations",
)


def _check_identical(name, reference, other, tier):
    for field in COMPARED_FIELDS:
        ref_value = getattr(reference, field)
        other_value = getattr(other, field)
        if ref_value != other_value:
            raise AssertionError(
                f"{name}: {field} diverged: reference={ref_value!r} "
                f"{tier}={other_value!r}"
            )
    if reference.opcode_counts != other.opcode_counts:
        raise AssertionError(f"{name}: opcode_counts diverged ({tier})")


TIERS = ("reference", "decoded", "block", "trace")


def measure_scheme(module, inputs, seed, repeat):
    """Interleaved min-of-``repeat`` timing of all four backends.

    The trace tier is exercised through its profile-guided path: a
    profiled warmup run under the block tier collects per-block
    execution counts, and those counts seed region selection.  The
    warmup and ``trace_compile`` happen before the timed loop, so the
    reported ``trace_seconds`` is pure execution (compile time is
    reported separately, like ``decode_seconds``).
    """
    invalidate_decode_cache(module)
    _, decode_seconds = decode_module(module)
    _, block_seconds = block_compile(module)

    profiler = ExecutionProfiler()
    CPU(module, seed=seed, interpreter="block", profiler=profiler).run(
        inputs=list(inputs)
    )
    trace_profile = profiler.block_counts()
    _, trace_seconds = trace_compile(module, trace_profile)

    best = {tier: math.inf for tier in TIERS}
    results = {}
    for _ in range(repeat):
        for interpreter in TIERS:
            cpu = CPU(
                module,
                seed=seed,
                interpreter=interpreter,
                trace_profile=trace_profile if interpreter == "trace" else None,
            )
            start = time.perf_counter()
            result = cpu.run(inputs=list(inputs))
            elapsed = time.perf_counter() - start
            best[interpreter] = min(best[interpreter], elapsed)
            results[interpreter] = result
    return best, results, decode_seconds, block_seconds, trace_seconds


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="502.gcc_r", choices=profile_names())
    parser.add_argument("--repeat", type=int, default=7)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--out", default=os.path.join(REPO_ROOT, "BENCH_interp.json")
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="fail if the geomean decoded/reference speedup falls below this",
    )
    parser.add_argument(
        "--min-block-speedup",
        type=float,
        default=1.8,
        help="fail if the geomean block/decoded speedup falls below this",
    )
    parser.add_argument(
        "--min-trace-speedup",
        type=float,
        default=2.5,
        help="fail if the geomean trace/decoded speedup falls below this "
        "(measured ~3.2-3.4x on 502.gcc_r; the floor sits below the "
        "shared-runner noise band, like the block tier's 1.8 vs ~2.3)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="trajectory file to check block-tier regression against "
        "(defaults to --out)",
    )
    parser.add_argument(
        "--max-block-regression",
        type=float,
        default=0.10,
        help="fail if block-tier steps/s drops more than this fraction "
        "below the baseline trajectory's last block entry (negative "
        "disables the check)",
    )
    parser.add_argument(
        "--suite-size",
        type=int,
        default=6,
        help="profiles in the serial-vs-parallel suite comparison",
    )
    parser.add_argument(
        "--skip-suite",
        action="store_true",
        help="skip the serial-vs-parallel suite timing",
    )
    args = parser.parse_args(argv)

    program = generate_program(get_profile(args.profile))
    module = program.compile()
    print(f"{args.profile}: {module.instruction_count()} IR instructions, "
          f"repeat={args.repeat} (interleaved, min per side)")

    scheme_entries = {}
    speedups = []
    block_speedups = []
    trace_speedups = []
    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        best, results, decode_seconds, block_seconds, trace_seconds = (
            measure_scheme(protected.module, program.inputs, args.seed, args.repeat)
        )
        name = f"{args.profile}/{scheme}"
        _check_identical(name, results["reference"], results["decoded"], "decoded")
        _check_identical(name, results["reference"], results["block"], "block")
        _check_identical(name, results["reference"], results["trace"], "trace")
        speedup = best["reference"] / best["decoded"]
        block_speedup = best["decoded"] / best["block"]
        trace_speedup = best["decoded"] / best["trace"]
        steps = results["decoded"].steps
        steps_per_second = steps / best["decoded"]
        block_steps_per_second = steps / best["block"]
        trace_steps_per_second = steps / best["trace"]
        speedups.append(speedup)
        block_speedups.append(block_speedup)
        trace_speedups.append(trace_speedup)
        scheme_entries[scheme] = {
            "reference_seconds": round(best["reference"], 6),
            "decoded_seconds": round(best["decoded"], 6),
            "block_seconds": round(best["block"], 6),
            "trace_seconds": round(best["trace"], 6),
            "decode_seconds": round(decode_seconds, 6),
            "block_compile_seconds": round(block_seconds, 6),
            "trace_compile_seconds": round(trace_seconds, 6),
            "speedup": round(speedup, 3),
            "block_speedup": round(block_speedup, 3),
            "trace_speedup": round(trace_speedup, 3),
            "steps": steps,
            "steps_per_second": round(steps_per_second, 1),
            "block_steps_per_second": round(block_steps_per_second, 1),
            "trace_steps_per_second": round(trace_steps_per_second, 1),
        }
        print(
            f"  {scheme:8s} reference={best['reference'] * 1e3:8.2f}ms "
            f"decoded={best['decoded'] * 1e3:8.2f}ms "
            f"block={best['block'] * 1e3:8.2f}ms "
            f"trace={best['trace'] * 1e3:8.2f}ms "
            f"decoded/ref={speedup:5.2f}x block/decoded={block_speedup:5.2f}x "
            f"trace/decoded={trace_speedup:5.2f}x "
            f"({trace_steps_per_second:,.0f} steps/s trace) counters identical"
        )

    geomean_speedup = geomean(speedups)
    geomean_block = geomean(block_speedups)
    geomean_trace = geomean(trace_speedups)
    print(
        f"geomean decoded/reference: {geomean_speedup:.2f}x "
        f"(min {min(speedups):.2f}x); "
        f"geomean block/decoded: {geomean_block:.2f}x "
        f"(min {min(block_speedups):.2f}x); "
        f"geomean trace/decoded: {geomean_trace:.2f}x "
        f"(min {min(trace_speedups):.2f}x)"
    )

    entry = {
        "label": "interp-throughput",
        "date": datetime.date.today().isoformat(),
        "profile": args.profile,
        "repeat": args.repeat,
        "schemes": scheme_entries,
        "geomean_speedup": round(geomean_speedup, 3),
        "min_speedup": round(min(speedups), 3),
        "geomean_block_speedup": round(geomean_block, 3),
        "min_block_speedup": round(min(block_speedups), 3),
        "geomean_trace_speedup": round(geomean_trace, 3),
        "min_trace_speedup": round(min(trace_speedups), 3),
    }

    if not args.skip_suite:
        names = profile_names()[: args.suite_size]
        serial = run_suite(names=names, seed=args.seed, jobs=1)
        parallel = run_suite(names=names, seed=args.seed, jobs=2)
        if serial.total_steps != parallel.total_steps:
            raise AssertionError("suite step totals diverged across jobs")
        if (os.cpu_count() or 1) < 2:
            print("note: single-CPU host; fan-out cannot beat serial here")
        print(
            f"suite ({len(names)} benchmarks x {len(SCHEMES)} schemes): "
            f"serial {serial.wall_seconds:.2f}s, "
            f"2 jobs {parallel.wall_seconds:.2f}s "
            f"({serial.wall_seconds / parallel.wall_seconds:.2f}x), "
            f"{serial.steps_per_second:,.0f} steps/s serial"
        )
        entry["suite"] = {
            "names": names,
            "cpu_count": os.cpu_count(),
            "serial_wall_seconds": round(serial.wall_seconds, 3),
            "parallel_wall_seconds": round(parallel.wall_seconds, 3),
            "parallel_jobs": 2,
            "total_steps": serial.total_steps,
            "steps_per_second": round(serial.steps_per_second, 1),
            "decode_seconds": round(serial.decode_seconds, 6),
        }

    regression = None
    if args.max_block_regression >= 0:
        regression, skip_note = check_block_regression_file(
            args.baseline or args.out, entry, tolerance=args.max_block_regression
        )
        if skip_note is not None:
            print(skip_note)

    append_entry(args.out, entry)
    print(f"appended trajectory entry to {args.out}")

    failed = False
    if geomean_speedup < args.min_speedup:
        print(
            f"FAIL: geomean decoded speedup {geomean_speedup:.2f}x below "
            f"threshold {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    if geomean_block < args.min_block_speedup:
        print(
            f"FAIL: geomean block speedup {geomean_block:.2f}x below "
            f"threshold {args.min_block_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    if geomean_trace < args.min_trace_speedup:
        print(
            f"FAIL: geomean trace speedup {geomean_trace:.2f}x below "
            f"threshold {args.min_trace_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    if regression is not None:
        print(f"FAIL: {regression}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
