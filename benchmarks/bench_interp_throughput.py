#!/usr/bin/env python3
"""Interpreter throughput: pre-decoded dispatch vs reference loop.

Runs one generated benchmark under every scheme with both CPU backends,
verifies their architectural counters are bit-identical, and reports the
decoded/reference speedup.  Also times a small suite serially vs with
two worker processes to exercise the ``repro.perf`` fan-out.

Wall-clock in shared containers is noisy (same code can swing tens of
percent between batches), so each scheme is measured as *interleaved*
reference/decoded pairs and the speedup is the ratio of the per-side
minima -- the minimum estimates the noise-free cost, and interleaving
keeps slow phases from landing on one side only.

Appends one entry to ``BENCH_interp.json`` (see repro.perf.trajectory)
so throughput can be tracked across commits.

Usage::

    python benchmarks/bench_interp_throughput.py
    python benchmarks/bench_interp_throughput.py --profile 505.mcf_r \
        --repeat 3 --min-speedup 1.0 --skip-suite   # CI smoke
"""

from __future__ import annotations

import argparse
import datetime
import math
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.config import SCHEMES
from repro.core.framework import protect
from repro.hardware import CPU, decode_module, invalidate_decode_cache
from repro.perf import append_entry, run_suite
from repro.workloads import generate_program, get_profile, profile_names

#: Architectural counters that must match between backends exactly.
COMPARED_FIELDS = (
    "status",
    "return_value",
    "cycles",
    "instructions",
    "ipc",
    "steps",
    "output",
    "pac_sign_count",
    "pac_auth_count",
    "isolated_allocations",
)


def _check_identical(name, reference, decoded):
    for field in COMPARED_FIELDS:
        ref_value = getattr(reference, field)
        dec_value = getattr(decoded, field)
        if ref_value != dec_value:
            raise AssertionError(
                f"{name}: {field} diverged: reference={ref_value!r} "
                f"decoded={dec_value!r}"
            )
    if reference.opcode_counts != decoded.opcode_counts:
        raise AssertionError(f"{name}: opcode_counts diverged")


def measure_scheme(module, inputs, seed, repeat):
    """Interleaved min-of-``repeat`` timing of both backends."""
    invalidate_decode_cache(module)
    _, decode_seconds = decode_module(module)

    best = {"reference": math.inf, "decoded": math.inf}
    results = {}
    for _ in range(repeat):
        for interpreter in ("reference", "decoded"):
            cpu = CPU(module, seed=seed, interpreter=interpreter)
            start = time.perf_counter()
            result = cpu.run(inputs=list(inputs))
            elapsed = time.perf_counter() - start
            best[interpreter] = min(best[interpreter], elapsed)
            results[interpreter] = result
    return best, results, decode_seconds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="502.gcc_r", choices=profile_names())
    parser.add_argument("--repeat", type=int, default=7)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--out", default=os.path.join(REPO_ROOT, "BENCH_interp.json")
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="fail if the geomean decoded speedup falls below this",
    )
    parser.add_argument(
        "--suite-size",
        type=int,
        default=6,
        help="profiles in the serial-vs-parallel suite comparison",
    )
    parser.add_argument(
        "--skip-suite",
        action="store_true",
        help="skip the serial-vs-parallel suite timing",
    )
    args = parser.parse_args(argv)

    program = generate_program(get_profile(args.profile))
    module = program.compile()
    print(f"{args.profile}: {module.instruction_count()} IR instructions, "
          f"repeat={args.repeat} (interleaved, min per side)")

    scheme_entries = {}
    speedups = []
    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        best, results, decode_seconds = measure_scheme(
            protected.module, program.inputs, args.seed, args.repeat
        )
        _check_identical(f"{args.profile}/{scheme}", *results.values())
        speedup = best["reference"] / best["decoded"]
        steps = results["decoded"].steps
        steps_per_second = steps / best["decoded"]
        speedups.append(speedup)
        scheme_entries[scheme] = {
            "reference_seconds": round(best["reference"], 6),
            "decoded_seconds": round(best["decoded"], 6),
            "decode_seconds": round(decode_seconds, 6),
            "speedup": round(speedup, 3),
            "steps": steps,
            "steps_per_second": round(steps_per_second, 1),
        }
        print(
            f"  {scheme:8s} reference={best['reference'] * 1e3:8.2f}ms "
            f"decoded={best['decoded'] * 1e3:8.2f}ms "
            f"speedup={speedup:5.2f}x "
            f"({steps_per_second:,.0f} steps/s, "
            f"decode {decode_seconds * 1e3:.2f}ms) counters identical"
        )

    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    print(f"geomean speedup: {geomean:.2f}x (min {min(speedups):.2f}x)")

    entry = {
        "label": "interp-throughput",
        "date": datetime.date.today().isoformat(),
        "profile": args.profile,
        "repeat": args.repeat,
        "schemes": scheme_entries,
        "geomean_speedup": round(geomean, 3),
        "min_speedup": round(min(speedups), 3),
    }

    if not args.skip_suite:
        names = profile_names()[: args.suite_size]
        serial = run_suite(names=names, seed=args.seed, jobs=1)
        parallel = run_suite(names=names, seed=args.seed, jobs=2)
        if serial.total_steps != parallel.total_steps:
            raise AssertionError("suite step totals diverged across jobs")
        if (os.cpu_count() or 1) < 2:
            print("note: single-CPU host; fan-out cannot beat serial here")
        print(
            f"suite ({len(names)} benchmarks x {len(SCHEMES)} schemes): "
            f"serial {serial.wall_seconds:.2f}s, "
            f"2 jobs {parallel.wall_seconds:.2f}s "
            f"({serial.wall_seconds / parallel.wall_seconds:.2f}x), "
            f"{serial.steps_per_second:,.0f} steps/s serial"
        )
        entry["suite"] = {
            "names": names,
            "cpu_count": os.cpu_count(),
            "serial_wall_seconds": round(serial.wall_seconds, 3),
            "parallel_wall_seconds": round(parallel.wall_seconds, 3),
            "parallel_jobs": 2,
            "total_steps": serial.total_steps,
            "steps_per_second": round(serial.steps_per_second, 1),
            "decode_seconds": round(serial.decode_seconds, 6),
        }

    append_entry(args.out, entry)
    print(f"appended trajectory entry to {args.out}")

    if geomean < args.min_speedup:
        print(
            f"FAIL: geomean speedup {geomean:.2f}x below "
            f"threshold {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
