"""§6.3 nginx: transfer-rate degradation at 3s/30s/300s request batches.

Paper: averaged over the three durations, CPA degrades nginx's transfer
rate by 49.13% and Pythia by 20.15%; nginx's 720 input channels are
copy/move-saturated (712) and sit inside a hot request loop, which is
why its Pythia overhead is above the SPEC average.
"""

from repro.analysis import InputChannelAnalysis
from repro.workloads import nginx_program, run_nginx, transfer_rate_overhead

from conftest import print_table


def test_nginx_transfer_rate(suite, benchmark):
    runs = run_nginx(durations=("3s", "30s", "300s"))
    rows = [
        f"{run.scheme:8s} {run.duration:>5s} {run.cycles:12.0f} "
        f"{run.transfer_rate:10.4f}"
        for run in runs
    ]
    cpa = transfer_rate_overhead(runs, "cpa")
    pythia = transfer_rate_overhead(runs, "pythia")
    dfi = transfer_rate_overhead(runs, "dfi")
    print_table(
        "nginx transfer rate (paper: CPA -49.13%, Pythia -20.15%)",
        f"{'scheme':8s} {'dur':>5s} {'cycles':>12s} {'rate':>10s}",
        rows,
        f"degradation: CPA {100 * cpa:.1f}% | Pythia {100 * pythia:.1f}% "
        f"| DFI {100 * dfi:.1f}%",
    )

    # -- shape assertions --------------------------------------------------------
    assert 0 < pythia < cpa < 1
    # nginx's Pythia overhead sits above the SPEC average (hot IC loop)
    from repro.metrics import mean

    spec_avg = mean(
        e.measurement.runtime_overhead("pythia")
        for name, e in suite.items()
        if name != "nginx"
    )
    assert suite["nginx"].measurement.runtime_overhead("pythia") > spec_avg

    # nginx's channels are copy/move-dominated (paper: 712 of 720)
    module = nginx_program("3s").compile()
    dist = InputChannelAnalysis(module).distribution()
    assert dist["movecopy"] / max(1, sum(dist.values())) > 0.8

    # Pythia secures more branches than DFI on nginx (paper: +300 branches)
    security = suite["nginx"].security
    assert security.pythia_extra_branches > 0

    # -- timed unit: serving one 3s batch under Pythia -------------------------------
    benchmark(lambda: run_nginx(durations=("3s",), schemes=("pythia",))[0].cycles)
