"""Fig. 5(a): IPC degradation, CPA vs Pythia.

Paper: CPA degrades IPC by 4.9% on average (worst 13%, 523.xalancbmk_r,
from PA instructions inside loop nests); Pythia by only 2.8%.  Our
in-order-leaning cycle model exaggerates absolute IPC loss, but the
shape -- Pythia well below CPA, the C++ loop-nest benchmarks worst --
is the reproduction target (see EXPERIMENTS.md).
"""

from repro.hardware import CPU
from repro.metrics import mean

from conftest import print_table


def test_fig5a_ipc_degradation(suite, spec_suite, benchmark):
    rows = []
    for name, entry in suite.items():
        cpa = 100 * entry.measurement.ipc_degradation("cpa")
        pythia = 100 * entry.measurement.ipc_degradation("pythia")
        vanilla_ipc = entry.measurement.ipc("vanilla")
        rows.append(
            f"{name:18s} {vanilla_ipc:8.2f} {cpa:8.1f}% {pythia:8.1f}%"
        )

    cpa_avg = mean(e.measurement.ipc_degradation("cpa") for e in suite.values())
    py_avg = mean(e.measurement.ipc_degradation("pythia") for e in suite.values())
    print_table(
        "Fig. 5(a) IPC degradation (paper: CPA 4.9%, Pythia 2.8%; worst xalancbmk)",
        f"{'benchmark':18s} {'IPC':>8s} {'CPA':>9s} {'Pythia':>9s}",
        rows,
        f"{'average':18s} {'':8s} {100 * cpa_avg:8.1f}% {100 * py_avg:8.1f}%",
    )

    # -- shape assertions --------------------------------------------------------
    for name, entry in suite.items():
        assert entry.measurement.ipc_degradation("pythia") < (
            entry.measurement.ipc_degradation("cpa")
        ), name
    # Pythia recovers most of the IPC loss (paper: 4.9 -> 2.8)
    assert py_avg < 0.6 * cpa_avg
    # the worst CPA IPC hit comes from an IC/pointer-heavy benchmark
    worst = max(spec_suite.values(), key=lambda e: e.measurement.ipc_degradation("cpa"))
    assert worst.name in ("523.xalancbmk_r", "502.gcc_r", "510.parest_r")

    # -- timed unit: vanilla execution (IPC baseline) --------------------------------
    entry = suite["519.lbm_r"]
    module = entry.measurement.runs["vanilla"].protection.module

    def run_vanilla():
        return CPU(module).run(inputs=list(entry.program.inputs))

    result = benchmark(run_vanilla)
    assert result.ipc > 0
