"""Fig. 5(b): input-channel distribution across the benchmarks.

Paper: 25326 IC functions total; print accounts for 31.5%, move/copy
for 65.9%, and the remaining four categories (map, scan, get, put) for
only 2.6%.  502.gcc_r and 510.parest_r carry the most channels; nginx
has 720 channels, 712 of them copy/move.
"""

from repro.analysis import InputChannelAnalysis
from repro.metrics import mean

from conftest import print_table


def test_fig5b_ic_distribution(suite, benchmark):
    totals = {category: 0 for category in ("print", "movecopy", "scan", "get", "put", "map")}
    rows = []
    per_benchmark = {}
    for name, entry in suite.items():
        module = entry.program.compile()
        analysis = InputChannelAnalysis(module)
        dist = analysis.distribution()
        per_benchmark[name] = (analysis.total(), dist)
        for category, count in dist.items():
            totals[category] += count
        rows.append(
            f"{name:18s} {analysis.total():5d}  "
            + "  ".join(f"{dist.get(c, 0):4d}" for c in totals)
        )

    grand_total = sum(totals.values())
    shares = {c: totals[c] / grand_total for c in totals}
    footer = (
        f"{'total':18s} {grand_total:5d}  "
        + "  ".join(f"{totals[c]:4d}" for c in totals)
        + f"\nshares: print {100 * shares['print']:.1f}% | movecopy "
        f"{100 * shares['movecopy']:.1f}% | rest "
        f"{100 * (1 - shares['print'] - shares['movecopy']):.1f}%"
    )
    print_table(
        "Fig. 5(b) input channels (paper: print 31.5%, move/copy 65.9%, rest 2.6%)",
        f"{'benchmark':18s} {'total':>5s}  " + "  ".join(f"{c[:4]:>4s}" for c in totals),
        rows,
        footer,
    )

    # -- shape assertions --------------------------------------------------------
    # print + move/copy dominate, move/copy ahead of print
    assert shares["movecopy"] > shares["print"]
    # (the fixed seed/request channels keep "rest" a bit above the
    # paper's 2.6% at this scale -- see EXPERIMENTS.md)
    assert shares["print"] + shares["movecopy"] > 0.75
    assert 1 - shares["print"] - shares["movecopy"] < 0.25
    # gcc and parest carry the most channels among SPEC
    spec_totals = {n: t for n, (t, _) in per_benchmark.items() if n != "nginx"}
    top_two = sorted(spec_totals, key=spec_totals.get, reverse=True)[:2]
    assert set(top_two) <= {"502.gcc_r", "510.parest_r"}
    # nginx is copy/move-saturated (paper: 712 of 720)
    nginx_total, nginx_dist = per_benchmark["nginx"]
    assert nginx_dist["movecopy"] / nginx_total > 0.8

    # -- timed unit: one IC census -------------------------------------------------
    module = suite["502.gcc_r"].program.compile()
    benchmark(lambda: InputChannelAnalysis(module).total())
