"""Fig. 7(b): fraction of conditional branches secured, DFI vs Pythia.

Paper: Pythia secures 92% of branches on average against DFI's 86.6%
(a 5.6 point advantage, up to 17 points on parest).  Pythia fully
secures three applications (519.lbm_r, 505.mcf_r, 525.x264_r); DFI
fully secures only lbm.  Pythia's edge concentrates in pointer-heavy
and C++ code, where DFI's slices terminate.
"""

from repro.metrics import mean

from conftest import print_table


def test_fig7b_branch_security(suite, spec_suite, benchmark):
    rows = []
    for name, entry in suite.items():
        row = entry.security
        rows.append(
            f"{name:18s} {row.total_branches:5d} "
            f"{100 * row.pythia_secured:8.1f}% {100 * row.dfi_secured:8.1f}% "
            f"{100 * row.advantage:7.1f}pp"
        )

    pythia_avg = mean(e.security.pythia_secured for e in suite.values())
    dfi_avg = mean(e.security.dfi_secured for e in suite.values())
    print_table(
        "Fig. 7(b) branches secured (paper: Pythia 92%, DFI 86.6%)",
        f"{'benchmark':18s} {'brs':>5s} {'Pythia':>9s} {'DFI':>9s} {'adv':>9s}",
        rows,
        f"{'average':18s} {'':5s} {100 * pythia_avg:8.1f}% {100 * dfi_avg:8.1f}% "
        f"{100 * (pythia_avg - dfi_avg):7.1f}pp",
    )

    # -- shape assertions --------------------------------------------------------
    # Pythia >= DFI on every benchmark, strictly better on average
    for name, entry in suite.items():
        assert entry.security.pythia_secured >= entry.security.dfi_secured, name
    assert pythia_avg > dfi_avg
    # magnitudes in the paper's band
    assert 0.85 < pythia_avg <= 1.0
    assert 0.70 < dfi_avg < pythia_avg
    # Pythia fully secures lbm, mcf and x264 (the paper's three)
    for name in ("519.lbm_r", "505.mcf_r", "525.x264_r"):
        assert spec_suite[name].security.pythia_fully_secures, name
    # DFI fully secures lbm but NOT the pointer-rich benchmarks
    assert spec_suite["519.lbm_r"].security.dfi_fully_secures
    assert not spec_suite["510.parest_r"].security.dfi_fully_secures
    # the biggest DFI gap is a C++ benchmark (paper: parest, 17pp)
    worst_gap = max(spec_suite.values(), key=lambda e: e.security.advantage)
    assert worst_gap.name in ("510.parest_r", "520.omnetpp_r", "523.xalancbmk_r")

    # -- timed unit: one branch-security row --------------------------------------
    from repro.metrics import branch_security_row

    module = suite["505.mcf_r"].program.compile()
    benchmark(lambda: branch_security_row(module, "505.mcf_r").pythia_secured)
