#!/usr/bin/env python3
"""Gate defense-coverage-matrix regressions (CI gate).

Compares a freshly produced campaign coverage matrix (``python -m
repro campaign --matrix-out``) against a checked-in baseline and fails
when protection regresses:

- any (scheme, family) cell that had zero ``bypassed`` mutants in the
  baseline but has bypasses now (``trapped``/``detected`` coverage
  regressed to ``bypassed``);
- any ``crashed`` count above the baseline's;
- schema drift or families/schemes missing from the current matrix.

New families or schemes absent from the baseline are allowed (coverage
can grow); a *larger* bypass count in a cell the baseline already saw
bypasses in is reported as an advisory, not a failure, since mutant
counts scale with ``--budget``.

Usage::

    python tools/check_coverage_matrix.py \
        --baseline tools/coverage_matrix_baseline.json \
        --current matrix.json

Exits 0 when coverage held, 1 with one diagnostic line per regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Tuple

SCHEMA = "repro-campaign-matrix-v1"


def load_matrix(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: schema is {payload.get('schema')!r}, expected {SCHEMA!r}"
        )
    if not isinstance(payload.get("matrix"), dict):
        raise ValueError(f"{path}: 'matrix' missing or not an object")
    return payload


def compare(
    baseline: Dict[str, Any], current: Dict[str, Any]
) -> Tuple[List[str], List[str]]:
    """(regressions, advisories) between two matrix manifests."""
    regressions: List[str] = []
    advisories: List[str] = []
    base_matrix = baseline["matrix"]
    cur_matrix = current["matrix"]
    for scheme, families in sorted(base_matrix.items()):
        if scheme not in cur_matrix:
            regressions.append(f"scheme {scheme!r} missing from current matrix")
            continue
        for family, base_cell in sorted(families.items()):
            cur_cell = cur_matrix[scheme].get(family)
            if cur_cell is None:
                regressions.append(
                    f"{scheme}/{family}: family missing from current matrix"
                )
                continue
            base_bypassed = int(base_cell.get("bypassed", 0))
            cur_bypassed = int(cur_cell.get("bypassed", 0))
            if base_bypassed == 0 and cur_bypassed > 0:
                regressions.append(
                    f"{scheme}/{family}: baseline had 0 bypasses, "
                    f"now {cur_bypassed} -- coverage regressed to bypassed"
                )
            elif cur_bypassed > base_bypassed:
                advisories.append(
                    f"{scheme}/{family}: bypasses {base_bypassed} -> "
                    f"{cur_bypassed} (baseline cell already leaked; "
                    "budget-dependent)"
                )
            base_crashed = int(base_cell.get("crashed", 0))
            cur_crashed = int(cur_cell.get("crashed", 0))
            if cur_crashed > base_crashed:
                regressions.append(
                    f"{scheme}/{family}: crashed {base_crashed} -> {cur_crashed}"
                )
    return regressions, advisories


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        required=True,
        help="checked-in baseline coverage matrix JSON",
    )
    parser.add_argument(
        "--current",
        required=True,
        help="freshly produced coverage matrix JSON",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_matrix(args.baseline)
        current = load_matrix(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    regressions, advisories = compare(baseline, current)
    for line in advisories:
        print(f"note: {line}")
    for line in regressions:
        print(f"FAIL: {line}", file=sys.stderr)
    if regressions:
        return 1
    cells = sum(len(families) for families in baseline["matrix"].values())
    print(
        f"ok: {cells} baseline cell(s) held "
        f"(baseline seed {baseline.get('seed')}, "
        f"current seed {current.get('seed')})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
