#!/usr/bin/env python3
"""Validate exported observability artifacts (CI gate).

Checks a ``--trace-out`` Chrome-trace JSON, a ``--metrics-out``
snapshot, and/or an ``--events-out`` ``repro-events-v1`` JSON-lines
file against the schemas in :mod:`repro.observability`, plus optional
presence assertions so CI can require specific spans, counters, and
event types (e.g. that a serve trace really carries cross-process
flow arrows and that every trap event names its originating request).

Usage::

    python tools/check_observability.py --trace trace.json \
        --metrics metrics.json --events events.jsonl \
        --expect-span verify --expect-span "task:505.mcf_r" \
        --expect-counter cache.misses \
        --expect-event-type trap --require-correlated-traps

Exits 0 when every check passes, 1 with one diagnostic line per
problem otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.observability import TRACE_SCHEMA, read_events, validate_snapshot

#: Event fields every span/instant must carry; metadata ("M") events
#: are exempt from ts.
REQUIRED_EVENT_FIELDS = ("name", "ph", "pid", "tid")


def check_trace(payload: Any, expected_spans: List[str]) -> List[str]:
    """Every problem with a Chrome-trace JSON object, as strings."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["trace: top level is not an object"]
    if payload.get("schema") != TRACE_SCHEMA:
        problems.append(
            f"trace: schema is {payload.get('schema')!r}, "
            f"expected {TRACE_SCHEMA!r}"
        )
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return problems + ["trace: 'traceEvents' missing or not a list"]
    names = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"trace: event #{index} is not an object")
            continue
        for field in REQUIRED_EVENT_FIELDS:
            if field not in event:
                problems.append(f"trace: event #{index} lacks {field!r}")
        ph = event.get("ph")
        if ph not in ("X", "i", "M", "s", "t", "f"):
            problems.append(f"trace: event #{index} has unknown ph {ph!r}")
        if ph == "X":
            if not isinstance(event.get("dur"), (int, float)) or event["dur"] < 0:
                problems.append(f"trace: span #{index} has bad 'dur'")
            if not isinstance(event.get("ts"), (int, float)) or event["ts"] < 0:
                problems.append(f"trace: span #{index} has bad 'ts'")
        if ph in ("s", "t", "f") and "id" not in event:
            problems.append(f"trace: flow event #{index} lacks 'id'")
        names.add(event.get("name"))
    for name in expected_spans:
        if name not in names:
            problems.append(f"trace: expected span/event {name!r} not present")
    return problems


def check_flows(payload: Any) -> List[str]:
    """Cross-process flow sanity: every flow id both starts and finishes."""
    events = payload.get("traceEvents") if isinstance(payload, dict) else None
    if not isinstance(events, list):
        return []
    starts = {
        e.get("id") for e in events if isinstance(e, dict) and e.get("ph") == "s"
    }
    finishes = {
        e.get("id") for e in events if isinstance(e, dict) and e.get("ph") == "f"
    }
    problems = []
    # Unfinished starts are legitimate (a coalesced follower's flow has
    # no worker-side finish); a finish without a start is a wiring bug.
    for flow_id in sorted(str(x) for x in finishes - starts):
        problems.append(f"trace: flow {flow_id!r} finishes but never starts")
    return problems


def check_events(
    path: str,
    expected_types: List[str],
    require_correlated_traps: bool,
) -> List[str]:
    """Every problem with a repro-events-v1 JSON-lines file."""
    try:
        records = read_events(path)
    except ValueError as exc:
        return [f"events: {exc}"]
    present = {record["type"] for record in records}
    problems = []
    for name in expected_types:
        if name not in present:
            problems.append(f"events: expected event type {name!r} not present")
    if require_correlated_traps:
        for index, record in enumerate(records):
            if record["type"] != "trap":
                continue
            if record.get("request_id") is None and record.get("rid") is None:
                problems.append(
                    f"events: trap record #{index} carries neither a "
                    "request_id nor a rid"
                )
    return problems


def check_metrics(payload: Any, expected_counters: List[str]) -> List[str]:
    problems: List[str] = []
    error = validate_snapshot(payload)
    if error is not None:
        return [f"metrics: {error}"]
    for name in expected_counters:
        if name not in payload["counters"]:
            problems.append(f"metrics: expected counter {name!r} not present")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", help="Chrome-trace JSON to validate")
    parser.add_argument("--metrics", help="metrics snapshot JSON to validate")
    parser.add_argument(
        "--expect-span",
        action="append",
        default=[],
        metavar="NAME",
        help="require an event with this name in the trace (repeatable)",
    )
    parser.add_argument(
        "--expect-counter",
        action="append",
        default=[],
        metavar="NAME",
        help="require this counter in the metrics snapshot (repeatable)",
    )
    parser.add_argument(
        "--events", help="repro-events-v1 JSON-lines file to validate"
    )
    parser.add_argument(
        "--expect-event-type",
        action="append",
        default=[],
        metavar="TYPE",
        help="require at least one event of this type (repeatable)",
    )
    parser.add_argument(
        "--require-correlated-traps",
        action="store_true",
        help="fail when any trap event lacks both request_id and rid",
    )
    parser.add_argument(
        "--expect-flows",
        action="store_true",
        help="require cross-process flow events (ph s/f) in the trace",
    )
    args = parser.parse_args(argv)
    if not args.trace and not args.metrics and not args.events:
        parser.error("nothing to check: pass --trace, --metrics, and/or --events")

    problems: List[str] = []
    summary: List[str] = []
    if args.trace:
        with open(args.trace, "r", encoding="utf-8") as handle:
            payload: Dict[str, Any] = json.load(handle)
        problems += check_trace(payload, args.expect_span)
        problems += check_flows(payload)
        events = payload.get("traceEvents") or []
        spans = sum(1 for e in events if isinstance(e, dict) and e.get("ph") == "X")
        flows = sum(
            1 for e in events if isinstance(e, dict) and e.get("ph") in ("s", "t", "f")
        )
        pids = {e.get("pid") for e in events if isinstance(e, dict)}
        if args.expect_flows and not flows:
            problems.append("trace: expected flow events (ph s/f), found none")
        summary.append(
            f"{args.trace}: {len(events)} events ({spans} spans, "
            f"{flows} flow endpoints) from {len(pids)} process(es)"
        )
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        problems += check_metrics(snapshot, args.expect_counter)
        if isinstance(snapshot, dict):
            summary.append(
                f"{args.metrics}: "
                f"{len(snapshot.get('counters') or {})} counters, "
                f"{len(snapshot.get('gauges') or {})} gauges, "
                f"{len(snapshot.get('histograms') or {})} histograms"
            )
    if args.events:
        problems += check_events(
            args.events, args.expect_event_type, args.require_correlated_traps
        )
        try:
            records = read_events(args.events)
        except ValueError:
            records = []
        by_type: Dict[str, int] = {}
        for record in records:
            by_type[record["type"]] = by_type.get(record["type"], 0) + 1
        rendered = (
            ", ".join(f"{count} {kind}" for kind, count in sorted(by_type.items()))
            or "empty"
        )
        summary.append(f"{args.events}: {len(records)} event(s) ({rendered})")

    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    for line in summary:
        print(f"ok: {line}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
