#!/usr/bin/env python3
"""Validate exported observability artifacts (CI gate).

Checks a ``--trace-out`` Chrome-trace JSON and/or a ``--metrics-out``
snapshot against the schemas in :mod:`repro.observability`, plus
optional presence assertions so CI can require specific spans and
counters (e.g. that a suite trace really covers compile phases and
cache events from its workers).

Usage::

    python tools/check_observability.py --trace trace.json \
        --metrics metrics.json \
        --expect-span verify --expect-span "task:505.mcf_r" \
        --expect-counter cache.misses

Exits 0 when every check passes, 1 with one diagnostic line per
problem otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.observability import TRACE_SCHEMA, validate_snapshot

#: Event fields every span/instant must carry; metadata ("M") events
#: are exempt from ts.
REQUIRED_EVENT_FIELDS = ("name", "ph", "pid", "tid")


def check_trace(payload: Any, expected_spans: List[str]) -> List[str]:
    """Every problem with a Chrome-trace JSON object, as strings."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["trace: top level is not an object"]
    if payload.get("schema") != TRACE_SCHEMA:
        problems.append(
            f"trace: schema is {payload.get('schema')!r}, "
            f"expected {TRACE_SCHEMA!r}"
        )
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return problems + ["trace: 'traceEvents' missing or not a list"]
    names = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"trace: event #{index} is not an object")
            continue
        for field in REQUIRED_EVENT_FIELDS:
            if field not in event:
                problems.append(f"trace: event #{index} lacks {field!r}")
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"trace: event #{index} has unknown ph {ph!r}")
        if ph == "X":
            if not isinstance(event.get("dur"), (int, float)) or event["dur"] < 0:
                problems.append(f"trace: span #{index} has bad 'dur'")
            if not isinstance(event.get("ts"), (int, float)) or event["ts"] < 0:
                problems.append(f"trace: span #{index} has bad 'ts'")
        names.add(event.get("name"))
    for name in expected_spans:
        if name not in names:
            problems.append(f"trace: expected span/event {name!r} not present")
    return problems


def check_metrics(payload: Any, expected_counters: List[str]) -> List[str]:
    problems: List[str] = []
    error = validate_snapshot(payload)
    if error is not None:
        return [f"metrics: {error}"]
    for name in expected_counters:
        if name not in payload["counters"]:
            problems.append(f"metrics: expected counter {name!r} not present")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", help="Chrome-trace JSON to validate")
    parser.add_argument("--metrics", help="metrics snapshot JSON to validate")
    parser.add_argument(
        "--expect-span",
        action="append",
        default=[],
        metavar="NAME",
        help="require an event with this name in the trace (repeatable)",
    )
    parser.add_argument(
        "--expect-counter",
        action="append",
        default=[],
        metavar="NAME",
        help="require this counter in the metrics snapshot (repeatable)",
    )
    args = parser.parse_args(argv)
    if not args.trace and not args.metrics:
        parser.error("nothing to check: pass --trace and/or --metrics")

    problems: List[str] = []
    summary: List[str] = []
    if args.trace:
        with open(args.trace, "r", encoding="utf-8") as handle:
            payload: Dict[str, Any] = json.load(handle)
        problems += check_trace(payload, args.expect_span)
        events = payload.get("traceEvents") or []
        spans = sum(1 for e in events if isinstance(e, dict) and e.get("ph") == "X")
        pids = {e.get("pid") for e in events if isinstance(e, dict)}
        summary.append(
            f"{args.trace}: {len(events)} events ({spans} spans) "
            f"from {len(pids)} process(es)"
        )
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        problems += check_metrics(snapshot, args.expect_counter)
        if isinstance(snapshot, dict):
            summary.append(
                f"{args.metrics}: "
                f"{len(snapshot.get('counters') or {})} counters, "
                f"{len(snapshot.get('gauges') or {})} gauges, "
                f"{len(snapshot.get('histograms') or {})} histograms"
            )

    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    for line in summary:
        print(f"ok: {line}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
