#!/usr/bin/env python3
"""Gate a loadgen report against a declarative SLO policy (CI gate).

Feeds a ``loadgen --report-out`` JSON (and, optionally, an
``--events-out`` ``repro-events-v1`` file for the trap-rate target)
through :func:`repro.observability.slo.evaluate_report`.

Usage::

    python tools/check_slo.py --policy slo.json --report load.json \
        --events events.jsonl

The policy file is an :class:`~repro.observability.slo.SloPolicy`
JSON object, e.g.::

    {"max_p99_ms": 2000, "max_error_rate": 0, "trap_rate_factor": 50}

Exit codes follow the repo's layered taxonomy: 0 when every target
holds, 2 on any SLO breach (a security/contract-layer failure), 3 on
unreadable/invalid inputs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.observability import SloPolicy, count_traps, evaluate_report, read_events


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--policy", required=True, metavar="FILE", help="SLO policy JSON"
    )
    parser.add_argument(
        "--report",
        required=True,
        metavar="FILE",
        help="loadgen --report-out JSON to evaluate",
    )
    parser.add_argument(
        "--events",
        default=None,
        metavar="FILE",
        help="repro-events-v1 file; arms the trap-rate target",
    )
    parser.add_argument(
        "--baseline-trap-rate",
        type=float,
        default=None,
        help="expected traps per request under this workload (default: "
        "the quiet-baseline floor)",
    )
    args = parser.parse_args(argv)

    try:
        policy = SloPolicy.from_json_file(args.policy)
    except (OSError, ValueError) as exc:
        print(f"check_slo: error: {exc}", file=sys.stderr)
        return 3
    try:
        with open(args.report, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"check_slo: error: cannot read {args.report}: {exc}", file=sys.stderr)
        return 3
    if not isinstance(report, dict):
        print(f"check_slo: error: {args.report} is not a JSON object", file=sys.stderr)
        return 3

    trap_count = None
    if args.events is not None:
        try:
            trap_count = count_traps(read_events(args.events))
        except (OSError, ValueError) as exc:
            print(f"check_slo: error: {exc}", file=sys.stderr)
            return 3

    breaches = evaluate_report(
        policy,
        report,
        trap_count=trap_count,
        baseline_trap_rate=args.baseline_trap_rate,
    )
    checked: List[str] = []
    if policy.max_p99_ms is not None:
        checked.append(f"p99<={policy.max_p99_ms:g}ms")
    if policy.max_error_rate is not None:
        checked.append(f"errors<={policy.max_error_rate:g}")
    if policy.trap_rate_factor is not None and trap_count is not None:
        checked.append(f"trap-rate<={policy.trap_rate_factor:g}x baseline")
    for breach in breaches:
        print(f"SLO BREACH: {breach.message}", file=sys.stderr)
    if breaches:
        return 2
    print(
        f"ok: {args.report} within SLO ({', '.join(checked) or 'no targets'}; "
        f"p99 {float(report.get('p99_ms') or 0.0):.1f}ms, "
        f"{int(report.get('failures') or 0)} failure(s)"
        + (f", {trap_count} trap(s)" if trap_count is not None else "")
        + ")"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
